#ifndef TABREP_SERVE_SERVE_H_
#define TABREP_SERVE_SERVE_H_

// tabrep::serve — the encode-serving layer (ROADMAP north star:
// "serves heavy traffic"). A BatchedEncoder accepts blocking Encode
// calls from any number of client threads, micro-batches them onto the
// runtime thread pool, runs each table through the graph-free
// inference path (EncodeOptions::inference), and memoizes results in
// an LRU cache keyed by the serialized-table hash. Identical in-flight
// requests are coalesced: each distinct table is encoded exactly once
// no matter how many clients ask for it concurrently.
//
// Counters (tabrep.serve.*): requests, cache.hit, cache.miss,
// coalesced, encoded; histogram batch.size records how many tables
// each dispatcher wakeup carried.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "models/table_encoder.h"

namespace tabrep::serve {

/// Stable FNV-1a 64-bit hash over everything Encode reads from the
/// input: token fields, cell spans, and the used-rows/columns counts.
/// Tables that hash equal are served the same cached encoding.
uint64_t HashTokenizedTable(const TokenizedTable& input);

/// A served encoding: plain tensors (the serving path is graph-free),
/// shared immutably between the cache and every requester.
struct EncodedTable {
  Tensor hidden;  // [T, dim]
  Tensor cells;   // [num_cells, dim]; meaningful when has_cells
  bool has_cells = false;
};

using EncodedTablePtr = std::shared_ptr<const EncodedTable>;

/// Mutex-guarded LRU map from table hash to encoding. Capacity 0
/// disables caching (every Get misses, Put is a no-op).
class EncodeCache {
 public:
  explicit EncodeCache(std::size_t capacity);

  /// The cached encoding, promoted to most-recently-used; null on miss.
  EncodedTablePtr Get(uint64_t key);
  /// Inserts (or refreshes) `value`, evicting the least-recently-used
  /// entry when over capacity.
  void Put(uint64_t key, EncodedTablePtr value);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    uint64_t key;
    EncodedTablePtr value;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
};

struct BatchedEncoderOptions {
  /// Most tables one dispatcher wakeup encodes (fanned out over the
  /// runtime pool with ParallelFor).
  int64_t max_batch = 8;
  /// How long the dispatcher lingers for the batch to fill once the
  /// first request arrives. Affects batching/latency only, never the
  /// encoded values.
  int64_t max_wait_us = 200;
  /// LRU capacity; -1 reads TABREP_ENCODE_CACHE (default 256), 0
  /// disables caching.
  int64_t cache_capacity = -1;
  /// Ask Encode for pooled cell representations.
  bool need_cells = false;
};

/// Thread-safe blocking facade over TableEncoderModel::Encode. Puts
/// the model in eval mode on construction; the destructor drains every
/// accepted request before joining the dispatcher.
class BatchedEncoder {
 public:
  explicit BatchedEncoder(models::TableEncoderModel* model,
                          BatchedEncoderOptions options = {});
  ~BatchedEncoder();

  BatchedEncoder(const BatchedEncoder&) = delete;
  BatchedEncoder& operator=(const BatchedEncoder&) = delete;

  /// Blocks until `input` is encoded (or served from cache). Safe to
  /// call from many threads concurrently. `input` must stay alive for
  /// the duration of the call (it is not copied).
  EncodedTablePtr Encode(const TokenizedTable& input);

  const EncodeCache& cache() const { return cache_; }
  const BatchedEncoderOptions& options() const { return options_; }

 private:
  /// One distinct in-flight table; concurrent requests for the same
  /// key share a Pending (coalescing).
  struct Pending {
    uint64_t key = 0;
    const TokenizedTable* table = nullptr;  // the leader's input
    EncodedTablePtr result;
    bool done = false;
  };

  void DispatcherLoop();

  models::TableEncoderModel* model_;
  BatchedEncoderOptions options_;
  EncodeCache cache_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // dispatcher: queue became non-empty
  std::condition_variable done_cv_;  // clients: some batch finished
  std::deque<std::shared_ptr<Pending>> queue_;
  std::unordered_map<uint64_t, std::shared_ptr<Pending>> inflight_;
  bool stop_ = false;
  std::thread dispatcher_;
};

}  // namespace tabrep::serve

#endif  // TABREP_SERVE_SERVE_H_
