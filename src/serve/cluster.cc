#include "serve/cluster.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"

namespace tabrep::serve {

namespace {

/// Cache-key salt for stolen requests; any fixed non-zero constant
/// works — it only has to differ from 0 (home traffic) and from the
/// int8 salt's effect. Spells "lets" ("steal" backwards, truncated).
constexpr uint64_t kStealSalt = 0x7374656c73ull;

obs::Counter& RoutedCounter() {
  static obs::Counter& c =
      obs::Registry::Get().counter("tabrep.cluster.routed");
  return c;
}
obs::Counter& StealCounter() {
  static obs::Counter& c = obs::Registry::Get().counter("tabrep.cluster.steal");
  return c;
}
obs::Counter& PublishCounter() {
  static obs::Counter& c =
      obs::Registry::Get().counter("tabrep.cluster.publish");
  return c;
}
obs::Gauge& VersionGauge() {
  static obs::Gauge& g =
      obs::Registry::Get().gauge("tabrep.cluster.weights.version");
  return g;
}
obs::Histogram& ReloadUsHistogram() {
  static obs::Histogram& h =
      obs::Registry::Get().histogram("tabrep.cluster.reload.us");
  return h;
}

}  // namespace

ClusterOptions ClusterOptionsFromEnv() {
  ClusterOptions options;
  options.shards = EnvInt64("TABREP_SHARDS", options.shards);
  options.steal_threshold =
      EnvInt64("TABREP_STEAL_THRESHOLD", options.steal_threshold);
  options.encoder = OptionsFromEnv();
  return options;
}

Cluster::Cluster(models::TableEncoderModel* prototype, ClusterOptions options)
    : options_(options) {
  TABREP_CHECK(prototype != nullptr) << "Cluster needs a prototype model";
  config_ = prototype->config();
  const int64_t n = std::max<int64_t>(1, options_.shards);
  options_.shards = n;
  shards_.reserve(static_cast<size_t>(n));
  // Shard 0 borrows the prototype; clones replicate its full state
  // dict, which carries the weights AND the int8 calibration scales.
  shards_.push_back(
      std::make_unique<BatchedEncoder>(BorrowSnapshot(prototype),
                                       options_.encoder));
  TensorMap state;
  if (n > 1) state = prototype->ExportStateDict();
  for (int64_t i = 1; i < n; ++i) {
    auto model = models::CreateModel(config_);
    const Status imported = model->ImportStateDict(state);
    TABREP_CHECK(imported.ok())
        << "replica clone rejected the prototype's own state dict: "
        << imported.ToString();
    auto snapshot = std::make_shared<WeightsSnapshot>();
    snapshot->model = std::shared_ptr<models::TableEncoderModel>(
        std::move(model));
    snapshot->version = 1;
    shards_.push_back(std::make_unique<BatchedEncoder>(std::move(snapshot),
                                                       options_.encoder));
  }
  VersionGauge().Set(1.0);
}

int64_t Cluster::HomeShard(const TokenizedTable& input) const {
  return static_cast<int64_t>(HashTokenizedTable(input) %
                              static_cast<uint64_t>(shards_.size()));
}

std::future<StatusOr<EncodedTablePtr>> Cluster::Submit(
    const TokenizedTable& input, obs::RequestContext* trace,
    kernels::Precision precision) {
  const size_t n = shards_.size();
  const size_t home = static_cast<size_t>(HomeShard(input));
  if (n > 1 && options_.steal_threshold > 0 &&
      shards_[home]->queue_depth() >= options_.steal_threshold) {
    // Home is saturated: redirect to the shallowest shard. The depths
    // read here are racy, which is fine — stealing is a load-balance
    // heuristic; correctness (identical bytes, consistent versions)
    // is carried by the salted key, not by where the encode runs.
    size_t victim = home;
    int64_t best = shards_[home]->queue_depth();
    for (size_t i = 0; i < n; ++i) {
      const int64_t depth = shards_[i]->queue_depth();
      if (depth < best) {
        best = depth;
        victim = i;
      }
    }
    if (victim != home) {
      StealCounter().Increment();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return shards_[victim]->SubmitSalted(input, trace, precision,
                                           kStealSalt);
    }
  }
  RoutedCounter().Increment();
  routed_.fetch_add(1, std::memory_order_relaxed);
  return shards_[home]->Submit(input, trace, precision);
}

StatusOr<uint64_t> Cluster::PublishWeights(const TensorMap& checkpoint) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t next = version_.load(std::memory_order_relaxed) + 1;

  // Build every replica's model before touching any shard: an import
  // error (shape mismatch, missing tensor) must leave the cluster
  // serving the old generation on all shards, not a mix.
  std::vector<WeightsSnapshotPtr> snapshots;
  snapshots.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    auto model = models::CreateModel(config_);
    TABREP_RETURN_IF_ERROR(model->ImportStateDict(checkpoint));
    model->SetTraining(false);
    auto snapshot = std::make_shared<WeightsSnapshot>();
    snapshot->model = std::shared_ptr<models::TableEncoderModel>(
        std::move(model));
    snapshot->version = next;
    snapshots.push_back(std::move(snapshot));
  }

  // Replica-by-replica swap: each swap is all-or-nothing, requests in
  // flight keep the snapshot they captured, and a brief window where shard A
  // serves version V+1 while shard B still admits under V is fine —
  // every response still carries exactly the version it encoded under.
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->SetSnapshot(snapshots[i]);
  }
  version_.store(next, std::memory_order_release);

  const double elapsed_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  PublishCounter().Increment();
  VersionGauge().Set(static_cast<double>(next));
  ReloadUsHistogram().Record(elapsed_us);
  return next;
}

int64_t Cluster::queue_depth() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->queue_depth();
  return total;
}

int64_t Cluster::shard_queue_depth(int64_t shard) const {
  return shards_[static_cast<size_t>(shard)]->queue_depth();
}

const obs::Heartbeat& Cluster::shard_heartbeat(int64_t shard) const {
  return shards_[static_cast<size_t>(shard)]->heartbeat();
}

std::string Cluster::TopologyJson() const {
  std::string out = "{\"shards\":";
  out += std::to_string(shards_.size());
  out += ",\"steal_threshold\":";
  out += std::to_string(options_.steal_threshold);
  out += ",\"weights_version\":";
  out += std::to_string(weights_version());
  out += ",\"routed\":";
  out += std::to_string(routed_count());
  out += ",\"steal\":";
  out += std::to_string(steal_count());
  out += ",\"shard_depth\":[";
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(shards_[i]->queue_depth());
  }
  out += "]}";
  return out;
}

}  // namespace tabrep::serve
