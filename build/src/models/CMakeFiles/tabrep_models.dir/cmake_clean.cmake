file(REMOVE_RECURSE
  "CMakeFiles/tabrep_models.dir/explain.cc.o"
  "CMakeFiles/tabrep_models.dir/explain.cc.o.d"
  "CMakeFiles/tabrep_models.dir/heads.cc.o"
  "CMakeFiles/tabrep_models.dir/heads.cc.o.d"
  "CMakeFiles/tabrep_models.dir/table_encoder.cc.o"
  "CMakeFiles/tabrep_models.dir/table_encoder.cc.o.d"
  "CMakeFiles/tabrep_models.dir/visibility.cc.o"
  "CMakeFiles/tabrep_models.dir/visibility.cc.o.d"
  "libtabrep_models.a"
  "libtabrep_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabrep_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
