file(REMOVE_RECURSE
  "libtabrep_models.a"
)
