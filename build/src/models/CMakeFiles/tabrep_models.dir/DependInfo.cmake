
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/explain.cc" "src/models/CMakeFiles/tabrep_models.dir/explain.cc.o" "gcc" "src/models/CMakeFiles/tabrep_models.dir/explain.cc.o.d"
  "/root/repo/src/models/heads.cc" "src/models/CMakeFiles/tabrep_models.dir/heads.cc.o" "gcc" "src/models/CMakeFiles/tabrep_models.dir/heads.cc.o.d"
  "/root/repo/src/models/table_encoder.cc" "src/models/CMakeFiles/tabrep_models.dir/table_encoder.cc.o" "gcc" "src/models/CMakeFiles/tabrep_models.dir/table_encoder.cc.o.d"
  "/root/repo/src/models/visibility.cc" "src/models/CMakeFiles/tabrep_models.dir/visibility.cc.o" "gcc" "src/models/CMakeFiles/tabrep_models.dir/visibility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/tabrep_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/tabrep_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tabrep_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tabrep_text.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/tabrep_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tabrep_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
