# Empty compiler generated dependencies file for tabrep_models.
# This may be replaced when dependencies are built.
