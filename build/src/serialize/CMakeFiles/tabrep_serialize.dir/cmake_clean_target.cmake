file(REMOVE_RECURSE
  "libtabrep_serialize.a"
)
