
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serialize/serializer.cc" "src/serialize/CMakeFiles/tabrep_serialize.dir/serializer.cc.o" "gcc" "src/serialize/CMakeFiles/tabrep_serialize.dir/serializer.cc.o.d"
  "/root/repo/src/serialize/vocab_builder.cc" "src/serialize/CMakeFiles/tabrep_serialize.dir/vocab_builder.cc.o" "gcc" "src/serialize/CMakeFiles/tabrep_serialize.dir/vocab_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tabrep_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tabrep_text.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/tabrep_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
