file(REMOVE_RECURSE
  "CMakeFiles/tabrep_serialize.dir/serializer.cc.o"
  "CMakeFiles/tabrep_serialize.dir/serializer.cc.o.d"
  "CMakeFiles/tabrep_serialize.dir/vocab_builder.cc.o"
  "CMakeFiles/tabrep_serialize.dir/vocab_builder.cc.o.d"
  "libtabrep_serialize.a"
  "libtabrep_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabrep_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
