# Empty dependencies file for tabrep_serialize.
# This may be replaced when dependencies are built.
