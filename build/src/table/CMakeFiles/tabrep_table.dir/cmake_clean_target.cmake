file(REMOVE_RECURSE
  "libtabrep_table.a"
)
