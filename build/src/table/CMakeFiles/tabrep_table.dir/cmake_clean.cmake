file(REMOVE_RECURSE
  "CMakeFiles/tabrep_table.dir/corpus.cc.o"
  "CMakeFiles/tabrep_table.dir/corpus.cc.o.d"
  "CMakeFiles/tabrep_table.dir/corruption.cc.o"
  "CMakeFiles/tabrep_table.dir/corruption.cc.o.d"
  "CMakeFiles/tabrep_table.dir/csv.cc.o"
  "CMakeFiles/tabrep_table.dir/csv.cc.o.d"
  "CMakeFiles/tabrep_table.dir/synth.cc.o"
  "CMakeFiles/tabrep_table.dir/synth.cc.o.d"
  "CMakeFiles/tabrep_table.dir/table.cc.o"
  "CMakeFiles/tabrep_table.dir/table.cc.o.d"
  "CMakeFiles/tabrep_table.dir/value.cc.o"
  "CMakeFiles/tabrep_table.dir/value.cc.o.d"
  "libtabrep_table.a"
  "libtabrep_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabrep_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
