# Empty dependencies file for tabrep_table.
# This may be replaced when dependencies are built.
