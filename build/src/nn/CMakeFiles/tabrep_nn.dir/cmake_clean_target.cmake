file(REMOVE_RECURSE
  "libtabrep_nn.a"
)
