file(REMOVE_RECURSE
  "CMakeFiles/tabrep_nn.dir/attention.cc.o"
  "CMakeFiles/tabrep_nn.dir/attention.cc.o.d"
  "CMakeFiles/tabrep_nn.dir/layers.cc.o"
  "CMakeFiles/tabrep_nn.dir/layers.cc.o.d"
  "CMakeFiles/tabrep_nn.dir/module.cc.o"
  "CMakeFiles/tabrep_nn.dir/module.cc.o.d"
  "CMakeFiles/tabrep_nn.dir/optimizer.cc.o"
  "CMakeFiles/tabrep_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/tabrep_nn.dir/sparse_inference.cc.o"
  "CMakeFiles/tabrep_nn.dir/sparse_inference.cc.o.d"
  "CMakeFiles/tabrep_nn.dir/transformer.cc.o"
  "CMakeFiles/tabrep_nn.dir/transformer.cc.o.d"
  "libtabrep_nn.a"
  "libtabrep_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabrep_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
