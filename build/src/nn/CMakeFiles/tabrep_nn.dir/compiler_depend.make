# Empty compiler generated dependencies file for tabrep_nn.
# This may be replaced when dependencies are built.
