file(REMOVE_RECURSE
  "CMakeFiles/tabrep_sql.dir/ast.cc.o"
  "CMakeFiles/tabrep_sql.dir/ast.cc.o.d"
  "CMakeFiles/tabrep_sql.dir/executor.cc.o"
  "CMakeFiles/tabrep_sql.dir/executor.cc.o.d"
  "CMakeFiles/tabrep_sql.dir/generator.cc.o"
  "CMakeFiles/tabrep_sql.dir/generator.cc.o.d"
  "CMakeFiles/tabrep_sql.dir/parser.cc.o"
  "CMakeFiles/tabrep_sql.dir/parser.cc.o.d"
  "libtabrep_sql.a"
  "libtabrep_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabrep_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
