# Empty compiler generated dependencies file for tabrep_sql.
# This may be replaced when dependencies are built.
