file(REMOVE_RECURSE
  "libtabrep_sql.a"
)
