# Empty compiler generated dependencies file for tabrep_tasks.
# This may be replaced when dependencies are built.
