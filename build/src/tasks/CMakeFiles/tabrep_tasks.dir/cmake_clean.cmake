file(REMOVE_RECURSE
  "CMakeFiles/tabrep_tasks.dir/column_annotation.cc.o"
  "CMakeFiles/tabrep_tasks.dir/column_annotation.cc.o.d"
  "CMakeFiles/tabrep_tasks.dir/entity_matching.cc.o"
  "CMakeFiles/tabrep_tasks.dir/entity_matching.cc.o.d"
  "CMakeFiles/tabrep_tasks.dir/fact_verification.cc.o"
  "CMakeFiles/tabrep_tasks.dir/fact_verification.cc.o.d"
  "CMakeFiles/tabrep_tasks.dir/imputation.cc.o"
  "CMakeFiles/tabrep_tasks.dir/imputation.cc.o.d"
  "CMakeFiles/tabrep_tasks.dir/qa.cc.o"
  "CMakeFiles/tabrep_tasks.dir/qa.cc.o.d"
  "CMakeFiles/tabrep_tasks.dir/retrieval.cc.o"
  "CMakeFiles/tabrep_tasks.dir/retrieval.cc.o.d"
  "CMakeFiles/tabrep_tasks.dir/semantic_parsing.cc.o"
  "CMakeFiles/tabrep_tasks.dir/semantic_parsing.cc.o.d"
  "libtabrep_tasks.a"
  "libtabrep_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabrep_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
