file(REMOVE_RECURSE
  "libtabrep_tasks.a"
)
