file(REMOVE_RECURSE
  "CMakeFiles/tabrep_pretrain.dir/masking.cc.o"
  "CMakeFiles/tabrep_pretrain.dir/masking.cc.o.d"
  "CMakeFiles/tabrep_pretrain.dir/tapex.cc.o"
  "CMakeFiles/tabrep_pretrain.dir/tapex.cc.o.d"
  "CMakeFiles/tabrep_pretrain.dir/trainer.cc.o"
  "CMakeFiles/tabrep_pretrain.dir/trainer.cc.o.d"
  "libtabrep_pretrain.a"
  "libtabrep_pretrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabrep_pretrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
