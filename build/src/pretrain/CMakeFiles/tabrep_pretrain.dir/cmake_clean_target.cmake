file(REMOVE_RECURSE
  "libtabrep_pretrain.a"
)
