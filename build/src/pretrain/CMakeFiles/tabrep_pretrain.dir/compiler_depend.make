# Empty compiler generated dependencies file for tabrep_pretrain.
# This may be replaced when dependencies are built.
