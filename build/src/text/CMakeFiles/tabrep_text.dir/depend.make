# Empty dependencies file for tabrep_text.
# This may be replaced when dependencies are built.
