file(REMOVE_RECURSE
  "CMakeFiles/tabrep_text.dir/basic_tokenizer.cc.o"
  "CMakeFiles/tabrep_text.dir/basic_tokenizer.cc.o.d"
  "CMakeFiles/tabrep_text.dir/vocab.cc.o"
  "CMakeFiles/tabrep_text.dir/vocab.cc.o.d"
  "CMakeFiles/tabrep_text.dir/wordpiece.cc.o"
  "CMakeFiles/tabrep_text.dir/wordpiece.cc.o.d"
  "libtabrep_text.a"
  "libtabrep_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabrep_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
