file(REMOVE_RECURSE
  "libtabrep_text.a"
)
