file(REMOVE_RECURSE
  "CMakeFiles/tabrep_common.dir/logging.cc.o"
  "CMakeFiles/tabrep_common.dir/logging.cc.o.d"
  "CMakeFiles/tabrep_common.dir/rng.cc.o"
  "CMakeFiles/tabrep_common.dir/rng.cc.o.d"
  "CMakeFiles/tabrep_common.dir/status.cc.o"
  "CMakeFiles/tabrep_common.dir/status.cc.o.d"
  "CMakeFiles/tabrep_common.dir/string_util.cc.o"
  "CMakeFiles/tabrep_common.dir/string_util.cc.o.d"
  "libtabrep_common.a"
  "libtabrep_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabrep_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
