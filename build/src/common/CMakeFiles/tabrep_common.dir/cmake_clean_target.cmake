file(REMOVE_RECURSE
  "libtabrep_common.a"
)
