# Empty dependencies file for tabrep_common.
# This may be replaced when dependencies are built.
