# Empty dependencies file for tabrep_tensor.
# This may be replaced when dependencies are built.
