file(REMOVE_RECURSE
  "libtabrep_tensor.a"
)
