file(REMOVE_RECURSE
  "CMakeFiles/tabrep_tensor.dir/autograd.cc.o"
  "CMakeFiles/tabrep_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/tabrep_tensor.dir/io.cc.o"
  "CMakeFiles/tabrep_tensor.dir/io.cc.o.d"
  "CMakeFiles/tabrep_tensor.dir/ops.cc.o"
  "CMakeFiles/tabrep_tensor.dir/ops.cc.o.d"
  "CMakeFiles/tabrep_tensor.dir/tensor.cc.o"
  "CMakeFiles/tabrep_tensor.dir/tensor.cc.o.d"
  "libtabrep_tensor.a"
  "libtabrep_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabrep_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
