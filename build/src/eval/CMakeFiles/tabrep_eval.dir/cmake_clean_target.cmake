file(REMOVE_RECURSE
  "libtabrep_eval.a"
)
