file(REMOVE_RECURSE
  "CMakeFiles/tabrep_eval.dir/behavioral.cc.o"
  "CMakeFiles/tabrep_eval.dir/behavioral.cc.o.d"
  "CMakeFiles/tabrep_eval.dir/bm25.cc.o"
  "CMakeFiles/tabrep_eval.dir/bm25.cc.o.d"
  "CMakeFiles/tabrep_eval.dir/metrics.cc.o"
  "CMakeFiles/tabrep_eval.dir/metrics.cc.o.d"
  "libtabrep_eval.a"
  "libtabrep_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabrep_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
