# Empty dependencies file for tabrep_eval.
# This may be replaced when dependencies are built.
