# Empty compiler generated dependencies file for table_retrieval.
# This may be replaced when dependencies are built.
