file(REMOVE_RECURSE
  "CMakeFiles/table_retrieval.dir/table_retrieval.cpp.o"
  "CMakeFiles/table_retrieval.dir/table_retrieval.cpp.o.d"
  "table_retrieval"
  "table_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
