
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/table_qa.cpp" "examples/CMakeFiles/table_qa.dir/table_qa.cpp.o" "gcc" "examples/CMakeFiles/table_qa.dir/table_qa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tabrep_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/tabrep_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/tabrep_text.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/tabrep_table.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/tabrep_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/tabrep_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/tabrep_models.dir/DependInfo.cmake"
  "/root/repo/build/src/pretrain/CMakeFiles/tabrep_pretrain.dir/DependInfo.cmake"
  "/root/repo/build/src/tasks/CMakeFiles/tabrep_tasks.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/tabrep_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/tabrep_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
