file(REMOVE_RECURSE
  "CMakeFiles/table_qa.dir/table_qa.cpp.o"
  "CMakeFiles/table_qa.dir/table_qa.cpp.o.d"
  "table_qa"
  "table_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
