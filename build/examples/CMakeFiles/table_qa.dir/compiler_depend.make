# Empty compiler generated dependencies file for table_qa.
# This may be replaced when dependencies are built.
