# Empty dependencies file for text_to_sql.
# This may be replaced when dependencies are built.
