file(REMOVE_RECURSE
  "CMakeFiles/text_to_sql.dir/text_to_sql.cpp.o"
  "CMakeFiles/text_to_sql.dir/text_to_sql.cpp.o.d"
  "text_to_sql"
  "text_to_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_to_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
