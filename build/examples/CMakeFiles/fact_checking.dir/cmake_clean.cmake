file(REMOVE_RECURSE
  "CMakeFiles/fact_checking.dir/fact_checking.cpp.o"
  "CMakeFiles/fact_checking.dir/fact_checking.cpp.o.d"
  "fact_checking"
  "fact_checking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fact_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
