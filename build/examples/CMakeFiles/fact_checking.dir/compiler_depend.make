# Empty compiler generated dependencies file for fact_checking.
# This may be replaced when dependencies are built.
