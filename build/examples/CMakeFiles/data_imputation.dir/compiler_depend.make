# Empty compiler generated dependencies file for data_imputation.
# This may be replaced when dependencies are built.
