file(REMOVE_RECURSE
  "CMakeFiles/data_imputation.dir/data_imputation.cpp.o"
  "CMakeFiles/data_imputation.dir/data_imputation.cpp.o.d"
  "data_imputation"
  "data_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
