file(REMOVE_RECURSE
  "CMakeFiles/eval_extras_test.dir/eval_extras_test.cc.o"
  "CMakeFiles/eval_extras_test.dir/eval_extras_test.cc.o.d"
  "eval_extras_test"
  "eval_extras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
