# Empty dependencies file for eval_extras_test.
# This may be replaced when dependencies are built.
