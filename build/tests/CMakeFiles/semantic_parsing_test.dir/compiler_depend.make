# Empty compiler generated dependencies file for semantic_parsing_test.
# This may be replaced when dependencies are built.
