file(REMOVE_RECURSE
  "CMakeFiles/semantic_parsing_test.dir/semantic_parsing_test.cc.o"
  "CMakeFiles/semantic_parsing_test.dir/semantic_parsing_test.cc.o.d"
  "semantic_parsing_test"
  "semantic_parsing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_parsing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
