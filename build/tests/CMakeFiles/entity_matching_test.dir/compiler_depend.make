# Empty compiler generated dependencies file for entity_matching_test.
# This may be replaced when dependencies are built.
