file(REMOVE_RECURSE
  "CMakeFiles/entity_matching_test.dir/entity_matching_test.cc.o"
  "CMakeFiles/entity_matching_test.dir/entity_matching_test.cc.o.d"
  "entity_matching_test"
  "entity_matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entity_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
