# Empty compiler generated dependencies file for sparse_inference_test.
# This may be replaced when dependencies are built.
