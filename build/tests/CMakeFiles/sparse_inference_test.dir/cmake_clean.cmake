file(REMOVE_RECURSE
  "CMakeFiles/sparse_inference_test.dir/sparse_inference_test.cc.o"
  "CMakeFiles/sparse_inference_test.dir/sparse_inference_test.cc.o.d"
  "sparse_inference_test"
  "sparse_inference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
