# Empty dependencies file for bench_fig2d_imputation.
# This may be replaced when dependencies are built.
