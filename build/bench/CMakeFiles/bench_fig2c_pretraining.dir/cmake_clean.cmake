file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2c_pretraining.dir/bench_fig2c_pretraining.cc.o"
  "CMakeFiles/bench_fig2c_pretraining.dir/bench_fig2c_pretraining.cc.o.d"
  "bench_fig2c_pretraining"
  "bench_fig2c_pretraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2c_pretraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
