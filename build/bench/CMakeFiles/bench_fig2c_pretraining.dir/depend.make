# Empty dependencies file for bench_fig2c_pretraining.
# This may be replaced when dependencies are built.
