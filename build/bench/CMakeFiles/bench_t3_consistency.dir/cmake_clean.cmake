file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_consistency.dir/bench_t3_consistency.cc.o"
  "CMakeFiles/bench_t3_consistency.dir/bench_t3_consistency.cc.o.d"
  "bench_t3_consistency"
  "bench_t3_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
