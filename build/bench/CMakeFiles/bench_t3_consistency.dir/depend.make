# Empty dependencies file for bench_t3_consistency.
# This may be replaced when dependencies are built.
