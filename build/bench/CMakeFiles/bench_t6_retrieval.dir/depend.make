# Empty dependencies file for bench_t6_retrieval.
# This may be replaced when dependencies are built.
