file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_retrieval.dir/bench_t6_retrieval.cc.o"
  "CMakeFiles/bench_t6_retrieval.dir/bench_t6_retrieval.cc.o.d"
  "bench_t6_retrieval"
  "bench_t6_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
