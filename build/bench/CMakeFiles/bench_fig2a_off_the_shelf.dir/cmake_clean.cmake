file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a_off_the_shelf.dir/bench_fig2a_off_the_shelf.cc.o"
  "CMakeFiles/bench_fig2a_off_the_shelf.dir/bench_fig2a_off_the_shelf.cc.o.d"
  "bench_fig2a_off_the_shelf"
  "bench_fig2a_off_the_shelf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_off_the_shelf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
