# Empty dependencies file for bench_fig2a_off_the_shelf.
# This may be replaced when dependencies are built.
