file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_robustness.dir/bench_t5_robustness.cc.o"
  "CMakeFiles/bench_t5_robustness.dir/bench_t5_robustness.cc.o.d"
  "bench_t5_robustness"
  "bench_t5_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
