file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_tapex.dir/bench_t4_tapex.cc.o"
  "CMakeFiles/bench_t4_tapex.dir/bench_t4_tapex.cc.o.d"
  "bench_t4_tapex"
  "bench_t4_tapex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_tapex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
