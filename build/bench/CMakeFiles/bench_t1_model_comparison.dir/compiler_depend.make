# Empty compiler generated dependencies file for bench_t1_model_comparison.
# This may be replaced when dependencies are built.
