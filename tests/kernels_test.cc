#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "runtime/runtime.h"
#include "tensor/aligned_buffer.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

// Proves the vectorized kernels match the retained naive references
// across odd shapes, tails, and transposed layouts, and that the
// chunked kernels are bitwise thread-count-invariant.

namespace tabrep {
namespace {

class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { runtime::Configure({n}); }
  ~ScopedThreads() { runtime::Configure({}); }
};

std::vector<float> RandomVec(int64_t n, Rng& rng, float lo = -2.0f,
                             float hi = 2.0f) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.NextUniform(lo, hi);
  return v;
}

/// Mixed absolute/relative tolerance for kernels whose accumulation
/// order legitimately differs from the reference (FMA, lane-wise
/// reductions, polynomial exp).
void ExpectAllNear(const std::vector<float>& got, const std::vector<float>& want,
                   float tol) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    const float bound = tol * std::max(1.0f, std::fabs(want[i]));
    ASSERT_NEAR(got[i], want[i], bound) << "at index " << i;
  }
}

// Shapes deliberately include 1x1, primes, and dims that are not
// multiples of the 6-row / 16-column register tile or the 8-lane
// vector width.
struct MatShape {
  int64_t m, k, n;
};
const MatShape kMatShapes[] = {
    {1, 1, 1},  {2, 3, 4},    {5, 7, 11},  {6, 16, 16}, {7, 17, 33},
    {13, 1, 5}, {12, 32, 48}, {3, 129, 31}, {19, 23, 47}, {64, 64, 64},
};

TEST(KernelsTest, MatMulMatchesNaive) {
  Rng rng(42);
  for (const MatShape& s : kMatShapes) {
    std::vector<float> a = RandomVec(s.m * s.k, rng);
    std::vector<float> b = RandomVec(s.k * s.n, rng);
    std::vector<float> got(static_cast<size_t>(s.m * s.n), -99.0f);
    std::vector<float> want(static_cast<size_t>(s.m * s.n), 99.0f);
    kernels::MatMul(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    kernels::naive::MatMul(a.data(), b.data(), want.data(), s.m, s.k, s.n);
    ExpectAllNear(got, want, 1e-4f);
  }
}

TEST(KernelsTest, MatMulTransposedBMatchesNaive) {
  Rng rng(43);
  for (const MatShape& s : kMatShapes) {
    std::vector<float> a = RandomVec(s.m * s.k, rng);
    std::vector<float> b = RandomVec(s.n * s.k, rng);  // [n, k]
    std::vector<float> got(static_cast<size_t>(s.m * s.n));
    std::vector<float> want(static_cast<size_t>(s.m * s.n));
    kernels::MatMulTransposedB(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    kernels::naive::MatMulTransposedB(a.data(), b.data(), want.data(), s.m,
                                      s.k, s.n);
    ExpectAllNear(got, want, 1e-4f);
  }
}

TEST(KernelsTest, TransposeMatchesNaiveExactly) {
  Rng rng(44);
  const MatShape shapes[] = {
      {1, 0, 1}, {1, 0, 33}, {31, 0, 33}, {32, 0, 32}, {100, 0, 7}, {65, 0, 129}};
  for (const MatShape& s : shapes) {
    std::vector<float> a = RandomVec(s.m * s.n, rng);
    std::vector<float> got(static_cast<size_t>(s.m * s.n));
    std::vector<float> want(static_cast<size_t>(s.m * s.n));
    kernels::Transpose(a.data(), got.data(), s.m, s.n);
    kernels::naive::Transpose(a.data(), want.data(), s.m, s.n);
    ASSERT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(float)),
              0)
        << s.m << "x" << s.n;
  }
}

TEST(KernelsTest, ElementwiseMatchReference) {
  Rng rng(45);
  for (int64_t n : {1, 7, 8, 9, 64, 257}) {
    std::vector<float> a = RandomVec(n, rng);
    std::vector<float> b = RandomVec(n, rng);
    std::vector<float> out(static_cast<size_t>(n));

    kernels::Add(out.data(), a.data(), b.data(), n);
    for (int64_t i = 0; i < n; ++i) ASSERT_EQ(out[i], a[i] + b[i]);

    kernels::Mul(out.data(), a.data(), b.data(), n);
    for (int64_t i = 0; i < n; ++i) ASSERT_EQ(out[i], a[i] * b[i]);

    std::vector<float> y = b;
    kernels::Axpy(y.data(), a.data(), 0.5f, n);
    // FMA may contract the multiply-add; allow one-ulp-scale slack.
    for (int64_t i = 0; i < n; ++i)
      ASSERT_NEAR(y[i], b[i] + 0.5f * a[i], 1e-6f);

    std::vector<float> want(static_cast<size_t>(n));
    kernels::Tanh(out.data(), a.data(), n);
    kernels::naive::Tanh(want.data(), a.data(), n);
    ExpectAllNear(out, want, 1e-5f);

    kernels::Gelu(out.data(), a.data(), n);
    kernels::naive::Gelu(want.data(), a.data(), n);
    ExpectAllNear(out, want, 1e-5f);

    const float dot = kernels::Dot(a.data(), b.data(), n);
    float ref = 0.0f;
    for (int64_t i = 0; i < n; ++i) ref += a[i] * b[i];
    ASSERT_NEAR(dot, ref, 1e-4f * std::max(1.0f, std::fabs(ref)));
  }
}

TEST(KernelsTest, RowNormalizationsMatchNaive) {
  Rng rng(46);
  for (int64_t rows : {1, 3, 17}) {
    for (int64_t n : {1, 5, 8, 31, 64, 130}) {
      std::vector<float> base = RandomVec(rows * n, rng, -4.0f, 4.0f);
      std::vector<float> gamma = RandomVec(n, rng, 0.5f, 1.5f);
      std::vector<float> beta = RandomVec(n, rng, -0.5f, 0.5f);

      std::vector<float> got = base;
      std::vector<float> want = base;
      kernels::SoftmaxRows(got.data(), rows, n);
      kernels::naive::SoftmaxRows(want.data(), rows, n);
      ExpectAllNear(got, want, 1e-5f);

      got = base;
      want = base;
      kernels::LogSoftmaxRows(got.data(), rows, n);
      kernels::naive::LogSoftmaxRows(want.data(), rows, n);
      ExpectAllNear(got, want, 1e-5f);

      got = base;
      want = base;
      kernels::LayerNormRows(got.data(), gamma.data(), beta.data(), rows, n,
                             1e-5f);
      kernels::naive::LayerNormRows(want.data(), gamma.data(), beta.data(),
                                    rows, n, 1e-5f);
      ExpectAllNear(got, want, 1e-4f);
    }
  }
}

TEST(KernelsTest, FusedAttentionMatchesNaive) {
  Rng rng(47);
  struct AttnShape {
    int64_t tq, tk, dk, dv;
  };
  const AttnShape shapes[] = {
      {1, 1, 1, 1}, {3, 5, 7, 2}, {17, 13, 16, 16}, {9, 33, 24, 40}};
  for (const AttnShape& s : shapes) {
    std::vector<float> q = RandomVec(s.tq * s.dk, rng, -1.0f, 1.0f);
    std::vector<float> k = RandomVec(s.tk * s.dk, rng, -1.0f, 1.0f);
    std::vector<float> v = RandomVec(s.tk * s.dv, rng, -1.0f, 1.0f);
    std::vector<float> bias = RandomVec(s.tq * s.tk, rng, -1.0f, 0.0f);
    const float scale = 1.0f / std::sqrt(static_cast<float>(s.dk));
    for (const float* b : {static_cast<const float*>(nullptr),
                           static_cast<const float*>(bias.data())}) {
      std::vector<float> got(static_cast<size_t>(s.tq * s.dv));
      std::vector<float> want(static_cast<size_t>(s.tq * s.dv));
      std::vector<float> got_p(static_cast<size_t>(s.tq * s.tk));
      std::vector<float> want_p(static_cast<size_t>(s.tq * s.tk));
      kernels::FusedAttention(q.data(), k.data(), v.data(), b, scale, s.tq,
                              s.tk, s.dk, s.dv, got.data(), got_p.data());
      kernels::naive::FusedAttention(q.data(), k.data(), v.data(), b, scale,
                                     s.tq, s.tk, s.dk, s.dv, want.data(),
                                     want_p.data());
      ExpectAllNear(got, want, 1e-4f);
      ExpectAllNear(got_p, want_p, 1e-5f);

      // Dropping probs capture must not perturb the output bits.
      std::vector<float> got_nop(static_cast<size_t>(s.tq * s.dv));
      kernels::FusedAttention(q.data(), k.data(), v.data(), b, scale, s.tq,
                              s.tk, s.dk, s.dv, got_nop.data(), nullptr);
      ASSERT_EQ(std::memcmp(got.data(), got_nop.data(),
                            got.size() * sizeof(float)),
                0);
    }
  }
}

TEST(KernelsTest, MatMulThreadCountInvariantBitwise) {
  Rng rng(48);
  const int64_t m = 37, k = 53, n = 41;
  std::vector<float> a = RandomVec(m * k, rng);
  std::vector<float> b = RandomVec(k * n, rng);
  std::vector<float> c1(static_cast<size_t>(m * n));
  std::vector<float> c4(static_cast<size_t>(m * n));
  {
    ScopedThreads threads(1);
    kernels::MatMul(a.data(), b.data(), c1.data(), m, k, n);
  }
  {
    ScopedThreads threads(4);
    kernels::MatMul(a.data(), b.data(), c4.data(), m, k, n);
  }
  EXPECT_EQ(std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)), 0);
}

TEST(KernelsTest, FusedAttentionThreadCountInvariantBitwise) {
  Rng rng(49);
  const int64_t tq = 29, tk = 31, dk = 24, dv = 24;
  std::vector<float> q = RandomVec(tq * dk, rng);
  std::vector<float> k = RandomVec(tk * dk, rng);
  std::vector<float> v = RandomVec(tk * dv, rng);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  std::vector<float> o1(static_cast<size_t>(tq * dv));
  std::vector<float> o4(static_cast<size_t>(tq * dv));
  std::vector<float> p4(static_cast<size_t>(tq * tk));
  {
    ScopedThreads threads(1);
    kernels::FusedAttention(q.data(), k.data(), v.data(), nullptr, scale, tq,
                            tk, dk, dv, o1.data(), nullptr);
  }
  {
    // 4 threads AND probs capture on: both must leave the bits alone.
    ScopedThreads threads(4);
    kernels::FusedAttention(q.data(), k.data(), v.data(), nullptr, scale, tq,
                            tk, dk, dv, o4.data(), p4.data());
  }
  EXPECT_EQ(std::memcmp(o1.data(), o4.data(), o1.size() * sizeof(float)), 0);
}

TEST(KernelsTest, TensorStorageIsCacheLineAligned) {
  for (auto shape : {std::vector<int64_t>{1}, {3, 5}, {33, 7}, {128, 128}}) {
    Tensor t = Tensor::Zeros(shape);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) %
                  AlignedBuffer::kAlignment,
              0u);
  }
}

TEST(KernelsTest, GrainTracksFlopsBudget) {
  EXPECT_EQ(kernels::GrainForFlopsPerRow(0), 1 << 15);
  EXPECT_EQ(kernels::GrainForFlopsPerRow(1 << 14), 2);
  EXPECT_EQ(kernels::GrainForFlopsPerRow(1 << 20), 1);
}

TEST(KernelsTest, SimdLevelIsResolvedAndNamed) {
  const kernels::SimdLevel level = kernels::ActiveSimdLevel();
  EXPECT_EQ(level, kernels::ActiveSimdLevel());  // stable across calls
  const char* name = kernels::SimdLevelName(level);
  EXPECT_TRUE(std::string(name) == "scalar" || std::string(name) == "avx2");
  if (level == kernels::SimdLevel::kAvx2) {
    EXPECT_TRUE(kernels::Avx2CompiledIn());
  }
}

}  // namespace
}  // namespace tabrep
