#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/runtime.h"
#include "tensor/aligned_buffer.h"
#include "tensor/kernels.h"
#include "tensor/kernels_int8.h"
#include "tensor/tensor.h"

// Proves the vectorized kernels match the retained naive references
// across odd shapes, tails, and transposed layouts, and that the
// chunked kernels are bitwise thread-count-invariant.

namespace tabrep {
namespace {

class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { runtime::Configure({n}); }
  ~ScopedThreads() { runtime::Configure({}); }
};

std::vector<float> RandomVec(int64_t n, Rng& rng, float lo = -2.0f,
                             float hi = 2.0f) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.NextUniform(lo, hi);
  return v;
}

/// Mixed absolute/relative tolerance for kernels whose accumulation
/// order legitimately differs from the reference (FMA, lane-wise
/// reductions, polynomial exp).
void ExpectAllNear(const std::vector<float>& got, const std::vector<float>& want,
                   float tol) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    const float bound = tol * std::max(1.0f, std::fabs(want[i]));
    ASSERT_NEAR(got[i], want[i], bound) << "at index " << i;
  }
}

// Shapes deliberately include 1x1, primes, and dims that are not
// multiples of the 6-row / 16-column register tile or the 8-lane
// vector width.
struct MatShape {
  int64_t m, k, n;
};
const MatShape kMatShapes[] = {
    {1, 1, 1},  {2, 3, 4},    {5, 7, 11},  {6, 16, 16}, {7, 17, 33},
    {13, 1, 5}, {12, 32, 48}, {3, 129, 31}, {19, 23, 47}, {64, 64, 64},
};

TEST(KernelsTest, MatMulMatchesNaive) {
  Rng rng(42);
  for (const MatShape& s : kMatShapes) {
    std::vector<float> a = RandomVec(s.m * s.k, rng);
    std::vector<float> b = RandomVec(s.k * s.n, rng);
    std::vector<float> got(static_cast<size_t>(s.m * s.n), -99.0f);
    std::vector<float> want(static_cast<size_t>(s.m * s.n), 99.0f);
    kernels::MatMul(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    kernels::naive::MatMul(a.data(), b.data(), want.data(), s.m, s.k, s.n);
    ExpectAllNear(got, want, 1e-4f);
  }
}

TEST(KernelsTest, MatMulTransposedBMatchesNaive) {
  Rng rng(43);
  for (const MatShape& s : kMatShapes) {
    std::vector<float> a = RandomVec(s.m * s.k, rng);
    std::vector<float> b = RandomVec(s.n * s.k, rng);  // [n, k]
    std::vector<float> got(static_cast<size_t>(s.m * s.n));
    std::vector<float> want(static_cast<size_t>(s.m * s.n));
    kernels::MatMulTransposedB(a.data(), b.data(), got.data(), s.m, s.k, s.n);
    kernels::naive::MatMulTransposedB(a.data(), b.data(), want.data(), s.m,
                                      s.k, s.n);
    ExpectAllNear(got, want, 1e-4f);
  }
}

TEST(KernelsTest, TransposeMatchesNaiveExactly) {
  Rng rng(44);
  const MatShape shapes[] = {
      {1, 0, 1}, {1, 0, 33}, {31, 0, 33}, {32, 0, 32}, {100, 0, 7}, {65, 0, 129}};
  for (const MatShape& s : shapes) {
    std::vector<float> a = RandomVec(s.m * s.n, rng);
    std::vector<float> got(static_cast<size_t>(s.m * s.n));
    std::vector<float> want(static_cast<size_t>(s.m * s.n));
    kernels::Transpose(a.data(), got.data(), s.m, s.n);
    kernels::naive::Transpose(a.data(), want.data(), s.m, s.n);
    ASSERT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(float)),
              0)
        << s.m << "x" << s.n;
  }
}

TEST(KernelsTest, ElementwiseMatchReference) {
  Rng rng(45);
  for (int64_t n : {1, 7, 8, 9, 64, 257}) {
    std::vector<float> a = RandomVec(n, rng);
    std::vector<float> b = RandomVec(n, rng);
    std::vector<float> out(static_cast<size_t>(n));

    kernels::Add(out.data(), a.data(), b.data(), n);
    for (int64_t i = 0; i < n; ++i) ASSERT_EQ(out[i], a[i] + b[i]);

    kernels::Mul(out.data(), a.data(), b.data(), n);
    for (int64_t i = 0; i < n; ++i) ASSERT_EQ(out[i], a[i] * b[i]);

    std::vector<float> y = b;
    kernels::Axpy(y.data(), a.data(), 0.5f, n);
    // FMA may contract the multiply-add; allow one-ulp-scale slack.
    for (int64_t i = 0; i < n; ++i)
      ASSERT_NEAR(y[i], b[i] + 0.5f * a[i], 1e-6f);

    std::vector<float> want(static_cast<size_t>(n));
    kernels::Tanh(out.data(), a.data(), n);
    kernels::naive::Tanh(want.data(), a.data(), n);
    ExpectAllNear(out, want, 1e-5f);

    kernels::Gelu(out.data(), a.data(), n);
    kernels::naive::Gelu(want.data(), a.data(), n);
    ExpectAllNear(out, want, 1e-5f);

    const float dot = kernels::Dot(a.data(), b.data(), n);
    float ref = 0.0f;
    for (int64_t i = 0; i < n; ++i) ref += a[i] * b[i];
    ASSERT_NEAR(dot, ref, 1e-4f * std::max(1.0f, std::fabs(ref)));
  }
}

TEST(KernelsTest, RowNormalizationsMatchNaive) {
  Rng rng(46);
  for (int64_t rows : {1, 3, 17}) {
    for (int64_t n : {1, 5, 8, 31, 64, 130}) {
      std::vector<float> base = RandomVec(rows * n, rng, -4.0f, 4.0f);
      std::vector<float> gamma = RandomVec(n, rng, 0.5f, 1.5f);
      std::vector<float> beta = RandomVec(n, rng, -0.5f, 0.5f);

      std::vector<float> got = base;
      std::vector<float> want = base;
      kernels::SoftmaxRows(got.data(), rows, n);
      kernels::naive::SoftmaxRows(want.data(), rows, n);
      ExpectAllNear(got, want, 1e-5f);

      got = base;
      want = base;
      kernels::LogSoftmaxRows(got.data(), rows, n);
      kernels::naive::LogSoftmaxRows(want.data(), rows, n);
      ExpectAllNear(got, want, 1e-5f);

      got = base;
      want = base;
      kernels::LayerNormRows(got.data(), gamma.data(), beta.data(), rows, n,
                             1e-5f);
      kernels::naive::LayerNormRows(want.data(), gamma.data(), beta.data(),
                                    rows, n, 1e-5f);
      ExpectAllNear(got, want, 1e-4f);
    }
  }
}

TEST(KernelsTest, FusedAttentionMatchesNaive) {
  Rng rng(47);
  struct AttnShape {
    int64_t tq, tk, dk, dv;
  };
  const AttnShape shapes[] = {
      {1, 1, 1, 1}, {3, 5, 7, 2}, {17, 13, 16, 16}, {9, 33, 24, 40}};
  for (const AttnShape& s : shapes) {
    std::vector<float> q = RandomVec(s.tq * s.dk, rng, -1.0f, 1.0f);
    std::vector<float> k = RandomVec(s.tk * s.dk, rng, -1.0f, 1.0f);
    std::vector<float> v = RandomVec(s.tk * s.dv, rng, -1.0f, 1.0f);
    std::vector<float> bias = RandomVec(s.tq * s.tk, rng, -1.0f, 0.0f);
    const float scale = 1.0f / std::sqrt(static_cast<float>(s.dk));
    for (const float* b : {static_cast<const float*>(nullptr),
                           static_cast<const float*>(bias.data())}) {
      std::vector<float> got(static_cast<size_t>(s.tq * s.dv));
      std::vector<float> want(static_cast<size_t>(s.tq * s.dv));
      std::vector<float> got_p(static_cast<size_t>(s.tq * s.tk));
      std::vector<float> want_p(static_cast<size_t>(s.tq * s.tk));
      kernels::FusedAttention(q.data(), k.data(), v.data(), b, scale, s.tq,
                              s.tk, s.dk, s.dv, got.data(), got_p.data());
      kernels::naive::FusedAttention(q.data(), k.data(), v.data(), b, scale,
                                     s.tq, s.tk, s.dk, s.dv, want.data(),
                                     want_p.data());
      ExpectAllNear(got, want, 1e-4f);
      ExpectAllNear(got_p, want_p, 1e-5f);

      // Dropping probs capture must not perturb the output bits.
      std::vector<float> got_nop(static_cast<size_t>(s.tq * s.dv));
      kernels::FusedAttention(q.data(), k.data(), v.data(), b, scale, s.tq,
                              s.tk, s.dk, s.dv, got_nop.data(), nullptr);
      ASSERT_EQ(std::memcmp(got.data(), got_nop.data(),
                            got.size() * sizeof(float)),
                0);
    }
  }
}

TEST(KernelsTest, MatMulThreadCountInvariantBitwise) {
  Rng rng(48);
  const int64_t m = 37, k = 53, n = 41;
  std::vector<float> a = RandomVec(m * k, rng);
  std::vector<float> b = RandomVec(k * n, rng);
  std::vector<float> c1(static_cast<size_t>(m * n));
  std::vector<float> c4(static_cast<size_t>(m * n));
  {
    ScopedThreads threads(1);
    kernels::MatMul(a.data(), b.data(), c1.data(), m, k, n);
  }
  {
    ScopedThreads threads(4);
    kernels::MatMul(a.data(), b.data(), c4.data(), m, k, n);
  }
  EXPECT_EQ(std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)), 0);
}

TEST(KernelsTest, FusedAttentionThreadCountInvariantBitwise) {
  Rng rng(49);
  const int64_t tq = 29, tk = 31, dk = 24, dv = 24;
  std::vector<float> q = RandomVec(tq * dk, rng);
  std::vector<float> k = RandomVec(tk * dk, rng);
  std::vector<float> v = RandomVec(tk * dv, rng);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  std::vector<float> o1(static_cast<size_t>(tq * dv));
  std::vector<float> o4(static_cast<size_t>(tq * dv));
  std::vector<float> p4(static_cast<size_t>(tq * tk));
  {
    ScopedThreads threads(1);
    kernels::FusedAttention(q.data(), k.data(), v.data(), nullptr, scale, tq,
                            tk, dk, dv, o1.data(), nullptr);
  }
  {
    // 4 threads AND probs capture on: both must leave the bits alone.
    ScopedThreads threads(4);
    kernels::FusedAttention(q.data(), k.data(), v.data(), nullptr, scale, tq,
                            tk, dk, dv, o4.data(), p4.data());
  }
  EXPECT_EQ(std::memcmp(o1.data(), o4.data(), o1.size() * sizeof(float)), 0);
}

TEST(KernelsTest, TensorStorageIsCacheLineAligned) {
  for (auto shape : {std::vector<int64_t>{1}, {3, 5}, {33, 7}, {128, 128}}) {
    Tensor t = Tensor::Zeros(shape);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) %
                  AlignedBuffer::kAlignment,
              0u);
  }
}

TEST(KernelsTest, GrainTracksFlopsBudget) {
  EXPECT_EQ(kernels::GrainForFlopsPerRow(0), 1 << 15);
  EXPECT_EQ(kernels::GrainForFlopsPerRow(1 << 14), 2);
  EXPECT_EQ(kernels::GrainForFlopsPerRow(1 << 20), 1);
}

TEST(KernelsTest, SimdLevelIsResolvedAndNamed) {
  const kernels::SimdLevel level = kernels::ActiveSimdLevel();
  EXPECT_EQ(level, kernels::ActiveSimdLevel());  // stable across calls
  const char* name = kernels::SimdLevelName(level);
  EXPECT_TRUE(std::string(name) == "naive" || std::string(name) == "scalar" ||
              std::string(name) == "avx2");
  if (level == kernels::SimdLevel::kAvx2) {
    EXPECT_TRUE(kernels::Avx2CompiledIn());
  }
}

// -- Dispatch registry ----------------------------------------------------

TEST(KernelsTest, VariantTableEnumeratesOpsAndPinsActive) {
  const std::vector<kernels::OpVariants> table = kernels::ActiveVariantTable();
  std::map<std::string, kernels::OpVariants> by_op;
  for (const kernels::OpVariants& op : table) by_op[op.op] = op;
  // Core f32 ops plus the int8 translation unit's ops must all be
  // registered — the cross-TU provider hook is load-bearing here.
  for (const char* op : {"matmul", "matmul_tb", "dot", "softmax_rows",
                         "attention", "quantize_u8", "matmul_int8"}) {
    ASSERT_EQ(by_op.count(op), 1u) << op;
  }
  const std::string active_level =
      kernels::SimdLevelName(kernels::ActiveSimdLevel());
  for (const kernels::OpVariants& op : table) {
    ASSERT_FALSE(op.available.empty()) << op.op;
    // The dispatched variant is always one of the compiled-in ones.
    EXPECT_NE(std::find(op.available.begin(), op.available.end(), op.active),
              op.available.end())
        << op.op << " active=" << op.active;
    // No op may dispatch above the resolved level.
    if (op.active == "avx2") EXPECT_EQ(active_level, "avx2") << op.op;
    if (active_level == "naive") EXPECT_NE(op.active, "avx2") << op.op;
  }
}

TEST(KernelsTest, VariantTableJsonMentionsEveryOp) {
  const std::string json = kernels::VariantTableJson();
  for (const kernels::OpVariants& op : kernels::ActiveVariantTable()) {
    EXPECT_NE(json.find("\"" + op.op + "\":{\"active\":\"" + op.active + "\""),
              std::string::npos)
        << op.op;
  }
}

// -- Int8 quantization properties (randomized, seeded) --------------------

TEST(KernelsTest, PackWeightsPerChannelScaleIsAbsmaxOverRange) {
  Rng rng(50);
  for (const MatShape& s : kMatShapes) {
    std::vector<float> w = RandomVec(s.k * s.n, rng, -3.0f, 3.0f);
    kernels::QuantizedMatrix q = kernels::PackWeightsInt8(w.data(), s.k, s.n);
    ASSERT_EQ(q.k, s.k);
    ASSERT_EQ(q.n, s.n);
    ASSERT_EQ(q.scale.size(), static_cast<size_t>(s.n));
    for (int64_t j = 0; j < s.n; ++j) {
      float absmax = 0.0f;
      for (int64_t i = 0; i < s.k; ++i)
        absmax = std::max(absmax, std::fabs(w[i * s.n + j]));
      EXPECT_FLOAT_EQ(q.scale[j],
                      absmax / static_cast<float>(kernels::kWeightQuantMax))
          << "col " << j;
    }
  }
}

TEST(KernelsTest, WeightRoundTripErrorBoundedByHalfStep) {
  Rng rng(51);
  for (const MatShape& s : kMatShapes) {
    std::vector<float> w = RandomVec(s.k * s.n, rng, -2.0f, 2.0f);
    kernels::QuantizedMatrix q = kernels::PackWeightsInt8(w.data(), s.k, s.n);
    std::vector<float> back(static_cast<size_t>(s.k * s.n), -99.0f);
    kernels::DequantizeWeights(q, back.data());
    for (int64_t i = 0; i < s.k; ++i) {
      for (int64_t j = 0; j < s.n; ++j) {
        // Round-nearest within the symmetric range: error is at most
        // half a quantization step of channel j.
        const float err = std::fabs(back[i * s.n + j] - w[i * s.n + j]);
        ASSERT_LE(err, 0.5f * q.scale[j] + 1e-6f)
            << "(" << i << "," << j << ")";
      }
    }
  }
}

TEST(KernelsTest, ActivationRoundTripBoundedAndSaturates) {
  Rng rng(52);
  const int64_t n = 513;
  const float absmax = 2.5f;
  std::vector<float> x = RandomVec(n, rng, -absmax, absmax);
  // Out-of-range and boundary probes: quantization must saturate, not
  // wrap, and zero must land exactly on the zero point.
  x[0] = 10.0f;
  x[1] = -10.0f;
  x[2] = absmax;
  x[3] = -absmax;
  x[4] = 0.0f;
  std::vector<uint8_t> q(static_cast<size_t>(n));
  std::vector<float> back(static_cast<size_t>(n));
  kernels::QuantizeU8(x.data(), q.data(), n, absmax);
  kernels::DequantizeU8(q.data(), back.data(), n, absmax);
  EXPECT_EQ(q[0], kernels::kActZeroPoint + kernels::kActQuantMax);  // 255
  EXPECT_EQ(q[1], kernels::kActZeroPoint - kernels::kActQuantMax);  // 1
  EXPECT_EQ(q[4], kernels::kActZeroPoint);
  const float step = absmax / static_cast<float>(kernels::kActQuantMax);
  for (int64_t i = 0; i < n; ++i) {
    const float clamped = std::min(absmax, std::max(-absmax, x[i]));
    ASSERT_NEAR(back[i], clamped, 0.5f * step + 1e-6f) << i;
  }
}

TEST(KernelsTest, ZeroAbsmaxQuantizesToZeroPoint) {
  const float x[3] = {-1.0f, 0.0f, 5.0f};
  uint8_t q[3] = {0, 0, 0};
  float back[3] = {-99.0f, -99.0f, -99.0f};
  kernels::QuantizeU8(x, q, 3, 0.0f);
  kernels::DequantizeU8(q, back, 3, 0.0f);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q[i], kernels::kActZeroPoint) << i;
    EXPECT_EQ(back[i], 0.0f) << i;
  }
}

TEST(KernelsTest, ZeroChannelContributesExactlyBias) {
  Rng rng(53);
  const int64_t m = 5, k = 37, n = 19;
  std::vector<float> w = RandomVec(k * n, rng);
  for (int64_t i = 0; i < k; ++i) w[i * n + 7] = 0.0f;  // dead channel
  std::vector<float> x = RandomVec(m * k, rng);
  std::vector<float> bias = RandomVec(n, rng, -0.5f, 0.5f);
  kernels::QuantizedMatrix q = kernels::PackWeightsInt8(w.data(), k, n);
  EXPECT_EQ(q.scale[7], 0.0f);
  std::vector<float> out(static_cast<size_t>(m * n));
  kernels::MatMulInt8(x.data(), m, q, bias.data(), 2.0f, out.data());
  // scale 0 zeroes the dequantize multiply, so the dead channel's
  // output is bitwise the bias — no accumulated quantization noise.
  for (int64_t i = 0; i < m; ++i) EXPECT_EQ(out[i * n + 7], bias[7]) << i;
}

TEST(KernelsTest, MatMulInt8MatchesDequantizedReference) {
  Rng rng(54);
  for (const MatShape& s : kMatShapes) {
    std::vector<float> x = RandomVec(s.m * s.k, rng, -1.0f, 1.0f);
    std::vector<float> w = RandomVec(s.k * s.n, rng, -1.0f, 1.0f);
    std::vector<float> bias = RandomVec(s.n, rng, -0.5f, 0.5f);
    float act_absmax = 0.0f;
    for (float v : x) act_absmax = std::max(act_absmax, std::fabs(v));
    kernels::QuantizedMatrix q = kernels::PackWeightsInt8(w.data(), s.k, s.n);
    std::vector<float> got(static_cast<size_t>(s.m * s.n), -99.0f);
    kernels::MatMulInt8(x.data(), s.m, q, bias.data(), act_absmax, got.data());

    // Reference over the *dequantized* operands in double: isolates the
    // integer pipeline (which must be exact up to the float epilogue)
    // from the quantization error itself.
    std::vector<float> wd(static_cast<size_t>(s.k * s.n));
    kernels::DequantizeWeights(q, wd.data());
    std::vector<uint8_t> xq(static_cast<size_t>(s.k));
    std::vector<float> xd(static_cast<size_t>(s.k));
    std::vector<float> want(static_cast<size_t>(s.m * s.n));
    for (int64_t i = 0; i < s.m; ++i) {
      kernels::QuantizeU8(x.data() + i * s.k, xq.data(), s.k, act_absmax);
      kernels::DequantizeU8(xq.data(), xd.data(), s.k, act_absmax);
      for (int64_t j = 0; j < s.n; ++j) {
        double acc = 0.0;
        for (int64_t kk = 0; kk < s.k; ++kk)
          acc += static_cast<double>(xd[kk]) *
                 static_cast<double>(wd[kk * s.n + j]);
        want[i * s.n + j] = static_cast<float>(acc) + bias[j];
      }
    }
    ExpectAllNear(got, want, 1e-4f);
  }
}

TEST(KernelsTest, MatMulInt8ThreadCountInvariantBitwise) {
  Rng rng(55);
  const int64_t m = 33, k = 70, n = 45;
  std::vector<float> x = RandomVec(m * k, rng);
  std::vector<float> w = RandomVec(k * n, rng);
  std::vector<float> bias = RandomVec(n, rng);
  kernels::QuantizedMatrix q = kernels::PackWeightsInt8(w.data(), k, n);
  std::vector<float> o1(static_cast<size_t>(m * n));
  std::vector<float> o4(static_cast<size_t>(m * n));
  {
    ScopedThreads threads(1);
    kernels::MatMulInt8(x.data(), m, q, bias.data(), 1.5f, o1.data());
  }
  {
    ScopedThreads threads(4);
    kernels::MatMulInt8(x.data(), m, q, bias.data(), 1.5f, o4.data());
  }
  EXPECT_EQ(std::memcmp(o1.data(), o4.data(), o1.size() * sizeof(float)), 0);
}

}  // namespace
}  // namespace tabrep

// TABREP_REQUIRE_SIMD pins the ctest variant-matrix entries: when the
// resolved dispatch level cannot honor the requested tier (e.g. an
// avx2 run on a host without AVX2), the binary reports a ctest SKIP
// (exit 77, see SKIP_RETURN_CODE) instead of silently testing the
// fallback tier a second time. Defining main here is safe alongside
// gtest_main: the linker only pulls its archive member when main is
// unresolved.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  const char* required = std::getenv("TABREP_REQUIRE_SIMD");
  if (required != nullptr && *required != '\0') {
    const char* active =
        tabrep::kernels::SimdLevelName(tabrep::kernels::ActiveSimdLevel());
    if (std::string(required) != active) {
      std::printf(
          "SKIPPED: TABREP_REQUIRE_SIMD=%s but the active kernel dispatch "
          "level is '%s' (host or build cannot honor the requested tier)\n",
          required, active);
      return 77;
    }
  }
  return RUN_ALL_TESTS();
}
