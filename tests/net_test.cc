#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "models/table_encoder.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/json.h"
#include "serialize/vocab_builder.h"
#include "serve/cluster.h"
#include "serve/serve.h"
#include "table/synth.h"

namespace tabrep {
namespace {

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

TokenizedTable MakeSyntheticTokenized(uint64_t seed, int32_t num_tokens,
                                      int32_t num_cells) {
  Rng rng(seed);
  TokenizedTable table;
  table.table_id = "synthetic-" + std::to_string(seed);
  for (int32_t i = 0; i < num_tokens; ++i) {
    TokenInfo tok;
    tok.id = static_cast<int32_t>(rng.NextBelow(30000));
    tok.row = static_cast<int32_t>(rng.NextBelow(16));
    tok.column = static_cast<int32_t>(rng.NextBelow(8));
    tok.segment = static_cast<int32_t>(rng.NextBelow(2));
    tok.kind = static_cast<int32_t>(rng.NextBelow(5));
    tok.rank = static_cast<int32_t>(rng.NextBelow(4));
    tok.entity_id = static_cast<int32_t>(rng.NextBelow(100)) - 1;
    table.tokens.push_back(tok);
  }
  for (int32_t i = 0; i < num_cells; ++i) {
    CellSpan cell;
    cell.row = static_cast<int32_t>(rng.NextBelow(16));
    cell.col = static_cast<int32_t>(rng.NextBelow(8));
    cell.begin = static_cast<int32_t>(
        rng.NextBelow(static_cast<uint64_t>(num_tokens)));
    cell.end = cell.begin + static_cast<int32_t>((1 + rng.NextBelow(3)));
    cell.entity_id = static_cast<int32_t>(rng.NextBelow(100)) - 1;
    table.cells.push_back(cell);
  }
  table.used_rows = 7;
  table.used_columns = 3;
  table.truncated = (seed % 2) == 0;
  return table;
}

bool SameTokenized(const TokenizedTable& a, const TokenizedTable& b) {
  if (a.table_id != b.table_id || a.tokens.size() != b.tokens.size() ||
      a.cells.size() != b.cells.size() || a.used_rows != b.used_rows ||
      a.used_columns != b.used_columns || a.truncated != b.truncated) {
    return false;
  }
  for (size_t i = 0; i < a.tokens.size(); ++i) {
    if (std::memcmp(&a.tokens[i], &b.tokens[i], sizeof(TokenInfo)) != 0) {
      return false;
    }
  }
  for (size_t i = 0; i < a.cells.size(); ++i) {
    if (std::memcmp(&a.cells[i], &b.cells[i], sizeof(CellSpan)) != 0) {
      return false;
    }
  }
  return true;
}

// --- Wire status byte mapping. ------------------------------------------

TEST(WireStatusTest, MapsEveryCodeOneToOne) {
  const std::vector<StatusCode> codes = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kOutOfRange,
      StatusCode::kFailedPrecondition, StatusCode::kIOError,
      StatusCode::kCorruption,   StatusCode::kUnimplemented,
      StatusCode::kInternal,     StatusCode::kOverloaded,
      StatusCode::kCancelled};
  for (StatusCode code : codes) {
    EXPECT_EQ(net::StatusCodeFromWireByte(net::WireStatusByte(code)), code);
  }
  // The serving codes are wire contract: their bytes are pinned.
  EXPECT_EQ(net::WireStatusByte(StatusCode::kOk), 0);
  EXPECT_EQ(net::WireStatusByte(StatusCode::kInvalidArgument), 1);
  EXPECT_EQ(net::WireStatusByte(StatusCode::kOverloaded), 9);
  EXPECT_EQ(net::WireStatusByte(StatusCode::kCancelled), 10);
  // Unknown bytes from a future peer degrade to kInternal, not UB.
  EXPECT_EQ(net::StatusCodeFromWireByte(200), StatusCode::kInternal);
}

TEST(StatusTest, NewServingCodesHaveNames) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOverloaded), "Overloaded");
  EXPECT_EQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_EQ(Status::Overloaded("q full").ToString(), "Overloaded: q full");
}

// --- Frame round-trips through arbitrary stream splits. -----------------

net::Frame TestFrame(uint32_t seq, const std::string& payload) {
  net::Frame frame;
  frame.type = net::MessageType::kEncodeRequest;
  frame.seq = seq;
  frame.payload = payload;
  return frame;
}

void ExpectFrameEq(const net::Frame& a, const net::Frame& b) {
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(FrameDecoderTest, RoundTripsAtEverySplitPoint) {
  const net::Frame sent = TestFrame(42, "hello tables");
  const std::string wire = net::EncodeFrame(sent);
  // Every two-chunk split, including empty first/second halves.
  for (size_t split = 0; split <= wire.size(); ++split) {
    net::FrameDecoder decoder;
    net::Frame out;
    decoder.Append(wire.data(), split);
    StatusOr<bool> got = decoder.Next(&out);
    ASSERT_TRUE(got.ok());
    if (*got) {
      ASSERT_EQ(split, wire.size());
    } else {
      decoder.Append(wire.data() + split, wire.size() - split);
      got = decoder.Next(&out);
      ASSERT_TRUE(got.ok());
      ASSERT_TRUE(*got) << "split at " << split;
    }
    ExpectFrameEq(out, sent);
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(FrameDecoderTest, OneBytePerReadReassembles) {
  const net::Frame sent = TestFrame(7, std::string(300, 'x'));
  const std::string wire = net::EncodeFrame(sent);
  net::FrameDecoder decoder;
  net::Frame out;
  for (size_t i = 0; i < wire.size(); ++i) {
    decoder.Append(wire.data() + i, 1);
    StatusOr<bool> got = decoder.Next(&out);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, i + 1 == wire.size()) << "byte " << i;
  }
  ExpectFrameEq(out, sent);
}

TEST(FrameDecoderTest, FuzzRandomSplitPointsAndBackToBackFrames) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    // A stream of several frames with random payloads...
    std::vector<net::Frame> sent;
    std::string wire;
    const int num_frames = 1 + static_cast<int>(rng.NextBelow(5));
    for (int f = 0; f < num_frames; ++f) {
      std::string payload;
      const int len = static_cast<int>(rng.NextBelow(400));
      for (int i = 0; i < len; ++i) {
        payload.push_back(static_cast<char>(rng.NextBelow(256)));
      }
      net::Frame frame = TestFrame(static_cast<uint32_t>(f), payload);
      frame.flags = static_cast<uint8_t>(rng.NextBelow(4));
      sent.push_back(frame);
      wire += net::EncodeFrame(frame);
    }
    // ...fed in chunks split at arbitrary points.
    net::FrameDecoder decoder;
    std::vector<net::Frame> received;
    size_t pos = 0;
    while (pos < wire.size()) {
      const size_t chunk = std::min<size_t>(
          wire.size() - pos, 1 + static_cast<size_t>(rng.NextBelow(64)));
      decoder.Append(wire.data() + pos, chunk);
      pos += chunk;
      while (true) {
        net::Frame out;
        StatusOr<bool> got = decoder.Next(&out);
        ASSERT_TRUE(got.ok());
        if (!*got) break;
        received.push_back(std::move(out));
      }
    }
    ASSERT_EQ(received.size(), sent.size()) << "trial " << trial;
    for (size_t i = 0; i < sent.size(); ++i) {
      ExpectFrameEq(received[i], sent[i]);
    }
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(FrameDecoderTest, BadMagicIsATypedStickyError) {
  net::FrameDecoder decoder;
  std::string junk = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  decoder.Append(junk.data(), junk.size());
  net::Frame out;
  StatusOr<bool> got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  // Sticky: the stream can never recover its framing.
  std::string valid = net::EncodeFrame(TestFrame(1, "late"));
  decoder.Append(valid.data(), valid.size());
  got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameDecoderTest, WrongVersionIsATypedError) {
  std::string wire = net::EncodeFrame(TestFrame(1, "v2"));
  wire[4] = 9;  // version byte
  net::FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  net::Frame out;
  StatusOr<bool> got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(got.status().message().find("version"), std::string::npos);
}

TEST(FrameDecoderTest, OversizedPayloadIsATypedError) {
  net::FrameDecoder decoder(/*max_payload=*/64);
  std::string wire = net::EncodeFrame(TestFrame(1, std::string(65, 'p')));
  decoder.Append(wire.data(), wire.size());
  net::Frame out;
  StatusOr<bool> got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameDecoderTest, UnknownTypeIsATypedError) {
  std::string wire = net::EncodeFrame(TestFrame(1, ""));
  wire[5] = 99;  // type byte
  net::FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  net::Frame out;
  StatusOr<bool> got = decoder.Next(&out);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameDecoderTest, TruncatedFrameReportsBufferedBytes) {
  const std::string wire = net::EncodeFrame(TestFrame(1, "cut short"));
  net::FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size() - 3);
  net::Frame out;
  StatusOr<bool> got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got);                    // still a prefix, not an error...
  EXPECT_GT(decoder.buffered(), 0u);     // ...but visibly incomplete, so a
                                         // connection close here is typed
                                         // upstream as truncation.
}

// --- Payload round-trips. ----------------------------------------------

TEST(WirePayloadTest, TokenizedTableRoundTrips) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    TokenizedTable table = MakeSyntheticTokenized(seed, 40, 12);
    std::string payload;
    net::EncodeTokenizedTable(table, &payload);
    StatusOr<TokenizedTable> back = net::DecodeTokenizedTable(payload);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(SameTokenized(table, *back));
  }
}

TEST(WirePayloadTest, EmptyTableRoundTrips) {
  TokenizedTable table;  // no tokens, no cells, empty id
  std::string payload;
  net::EncodeTokenizedTable(table, &payload);
  StatusOr<TokenizedTable> back = net::DecodeTokenizedTable(payload);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(SameTokenized(table, *back));
}

TEST(WirePayloadTest, TruncatedPayloadIsATypedError) {
  TokenizedTable table = MakeSyntheticTokenized(5, 20, 4);
  std::string payload;
  net::EncodeTokenizedTable(table, &payload);
  for (size_t cut : {size_t{0}, size_t{3}, payload.size() / 2,
                     payload.size() - 1}) {
    StatusOr<TokenizedTable> back =
        net::DecodeTokenizedTable(std::string_view(payload).substr(0, cut));
    ASSERT_FALSE(back.ok()) << "cut " << cut;
    EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
  }
  // Trailing garbage is as corrupt as truncation.
  StatusOr<TokenizedTable> extra = net::DecodeTokenizedTable(payload + "!!");
  ASSERT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kInvalidArgument);
}

TEST(WirePayloadTest, HostileTokenCountIsATypedError) {
  // A 4-byte payload announcing 2^30 tokens must fail the count check,
  // not attempt a 28GB resize.
  std::string payload;
  payload.resize(8, '\0');
  const uint32_t id_len = 0;
  const uint32_t tokens = 1u << 30;
  std::memcpy(payload.data(), &id_len, 4);
  std::memcpy(payload.data() + 4, &tokens, 4);
  StatusOr<TokenizedTable> back = net::DecodeTokenizedTable(payload);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(WirePayloadTest, EncodedTableRoundTripsBitwise) {
  serve::EncodedTable encoded;
  encoded.hidden = Tensor({3, 5});
  for (int64_t i = 0; i < encoded.hidden.numel(); ++i) {
    encoded.hidden.data()[i] = 0.123f * static_cast<float>(i) - 1.5f;
  }
  encoded.cells = Tensor({2, 5});
  for (int64_t i = 0; i < encoded.cells.numel(); ++i) {
    encoded.cells.data()[i] = -0.077f * static_cast<float>(i);
  }
  encoded.has_cells = true;

  std::string payload;
  uint8_t flags = 0;
  net::EncodeEncodedTable(encoded, &payload, &flags);
  EXPECT_TRUE(flags & net::kFlagHasCells);
  StatusOr<serve::EncodedTable> back =
      net::DecodeEncodedTable(payload, flags);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(BitwiseEqual(encoded.hidden, back->hidden));
  ASSERT_TRUE(back->has_cells);
  EXPECT_TRUE(BitwiseEqual(encoded.cells, back->cells));

  // Without the flag the cells bytes are trailing garbage.
  StatusOr<serve::EncodedTable> wrong = net::DecodeEncodedTable(payload, 0);
  ASSERT_FALSE(wrong.ok());
}

TEST(WirePayloadTest, WeightsVersionIsFlagGatedAndRoundTrips) {
  serve::EncodedTable encoded;
  encoded.hidden = Tensor({2, 3});
  for (int64_t i = 0; i < encoded.hidden.numel(); ++i) {
    encoded.hidden.data()[i] = static_cast<float>(i);
  }

  // Version 0 ("unknown") encodes exactly like a pre-version payload:
  // no flag, no trailing bytes — old clients parse it unchanged.
  std::string legacy;
  uint8_t legacy_flags = 0;
  net::EncodeEncodedTable(encoded, &legacy, &legacy_flags);
  EXPECT_FALSE(legacy_flags & net::kFlagHasVersion);

  encoded.weights_version = 7;
  std::string payload;
  uint8_t flags = 0;
  net::EncodeEncodedTable(encoded, &payload, &flags);
  EXPECT_TRUE(flags & net::kFlagHasVersion);
  EXPECT_EQ(payload.size(), legacy.size() + 8);  // one trailing u64

  StatusOr<serve::EncodedTable> back = net::DecodeEncodedTable(payload, flags);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->weights_version, 7u);
  EXPECT_TRUE(BitwiseEqual(encoded.hidden, back->hidden));

  // A payload without the flag decodes to version 0, not garbage.
  StatusOr<serve::EncodedTable> old = net::DecodeEncodedTable(legacy, 0);
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old->weights_version, 0u);

  // The flag without the trailing bytes is a typed truncation error.
  StatusOr<serve::EncodedTable> torn =
      net::DecodeEncodedTable(legacy, net::kFlagHasVersion);
  ASSERT_FALSE(torn.ok());
}

// --- End-to-end over real sockets. --------------------------------------

/// Corpus + tokenizer + model shared by the socket tests (vocab
/// building is the slow part; same idiom as ServeFixture).
class NetFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 24;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 1500;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    SerializerOptions sopts;
    sopts.max_tokens = 96;
    serializer_ = new TableSerializer(tokenizer_, sopts);

    ModelConfig config;
    config.family = ModelFamily::kTapas;
    config.vocab_size = tokenizer_->vocab().size();
    config.entity_vocab_size = corpus_->entities.size();
    config.transformer.dim = 32;
    config.transformer.num_layers = 1;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 64;
    config.transformer.dropout = 0.0f;
    config.max_position = 128;
    model_ = new TableEncoderModel(config);
    model_->SetTraining(false);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    model_ = nullptr;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
  static TableEncoderModel* model_;
};

TableCorpus* NetFixture::corpus_ = nullptr;
WordPieceTokenizer* NetFixture::tokenizer_ = nullptr;
TableSerializer* NetFixture::serializer_ = nullptr;
TableEncoderModel* NetFixture::model_ = nullptr;

TEST_F(NetFixture, PingAndSingleEncodeParity) {
  serve::BatchedEncoderOptions sopts;
  sopts.need_cells = true;
  serve::BatchedEncoder encoder(model_, sopts);
  net::Server server(&encoder);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  StatusOr<net::Client> client = net::Client::Connect("127.0.0.1",
                                                      server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client->Ping().ok());

  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[0]);
  Rng rng(1);
  models::EncodeOptions opts;
  opts.need_cells = true;
  opts.inference = true;
  models::Encoded direct = model_->Encode(serialized, rng, opts);

  StatusOr<net::EncodeResult> result = client->Encode(serialized);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();
  EXPECT_TRUE(BitwiseEqual(result->encoded.hidden, direct.hidden.value()));
  ASSERT_TRUE(result->encoded.has_cells);
  EXPECT_TRUE(BitwiseEqual(result->encoded.cells, direct.cells.value()));
}

TEST_F(NetFixture, ConcurrentConnectionsMatchDirectEncode) {
  serve::BatchedEncoder encoder(model_, {});
  net::Server server(&encoder);
  ASSERT_TRUE(server.Start().ok());

  const size_t num_tables = 8;
  std::vector<TokenizedTable> inputs;
  std::vector<Tensor> expected;
  for (size_t i = 0; i < num_tables; ++i) {
    inputs.push_back(serializer_->Serialize(corpus_->tables[i]));
    Rng rng(1);
    models::EncodeOptions opts;
    opts.need_cells = false;
    opts.inference = true;
    expected.push_back(model_->Encode(inputs[i], rng, opts).hidden.value());
  }

  const int num_clients = 4;
  const int rounds = 3;
  std::vector<int> failures(static_cast<size_t>(num_clients), 0);
  std::vector<std::thread> threads;
  for (int c = 0; c < num_clients; ++c) {
    threads.emplace_back([&, c] {
      StatusOr<net::Client> client =
          net::Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures[static_cast<size_t>(c)] = 1000;
        return;
      }
      for (int r = 0; r < rounds; ++r) {
        for (size_t i = 0; i < inputs.size(); ++i) {
          StatusOr<net::EncodeResult> out = client->Encode(inputs[i]);
          if (!out.ok() || !out->status.ok() ||
              !BitwiseEqual(out->encoded.hidden, expected[i])) {
            ++failures[static_cast<size_t>(c)];
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int f : failures) EXPECT_EQ(f, 0);
}

TEST_F(NetFixture, PipelinedRequestsComeBackInOrder) {
  serve::BatchedEncoder encoder(model_, {});
  net::Server server(&encoder);
  ASSERT_TRUE(server.Start().ok());
  StatusOr<net::Client> client = net::Client::Connect("127.0.0.1",
                                                      server.port());
  ASSERT_TRUE(client.ok());

  const uint32_t n = 6;
  for (uint32_t seq = 1; seq <= n; ++seq) {
    TokenizedTable t = serializer_->Serialize(corpus_->tables[seq % 8]);
    ASSERT_TRUE(client->SendEncodeRequest(t, seq).ok());
  }
  for (uint32_t seq = 1; seq <= n; ++seq) {
    StatusOr<net::EncodeResult> out = client->ReadResponse();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out->seq, seq);  // FIFO completion keeps request order
    EXPECT_TRUE(out->status.ok()) << out->status.ToString();
  }
}

TEST_F(NetFixture, MalformedPayloadGetsTypedInvalidArgument) {
  serve::BatchedEncoder encoder(model_, {});
  net::Server server(&encoder);
  ASSERT_TRUE(server.Start().ok());
  StatusOr<net::Client> client = net::Client::Connect("127.0.0.1",
                                                      server.port());
  ASSERT_TRUE(client.ok());

  // A request frame whose payload is not a TokenizedTable: the server
  // answers (typed) instead of dropping or dying, and the connection
  // remains usable.
  net::Frame bad;
  bad.type = net::MessageType::kEncodeRequest;
  bad.seq = 77;
  bad.payload = "definitely not a table";
  const std::string wire = net::EncodeFrame(bad);
  // Reuse the client's socket via Ping-style send: craft directly.
  TokenizedTable ok_table = serializer_->Serialize(corpus_->tables[1]);
  ASSERT_TRUE(client->SendEncodeRequest(ok_table, 1).ok());
  StatusOr<net::EncodeResult> first = client->ReadResponse();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->status.ok());

  // Now the malformed one (send the raw frame through a fresh client
  // whose socket we can write arbitrary bytes to).
  StatusOr<net::Client> raw = net::Client::Connect("127.0.0.1",
                                                   server.port());
  ASSERT_TRUE(raw.ok());
  // SendEncodeRequest would re-serialize; talk frames directly instead.
  // (Client has no raw-write API on purpose; go through a socketpair-
  // style second connection using Ping to prove liveness after.)
  // Simplest: use the existing client — send the bad frame bytes by
  // abusing SendEncodeRequest is impossible, so open a plain socket.
  // The Client::Encode path already covers the happy case; here we
  // hand-roll the exchange.
  // NOTE: kept deliberately low-level — this is the one test that
  // speaks raw bytes at an open port.
  struct RawConn {
    int fd;
    explicit RawConn(uint16_t port) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(port);
      inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
      EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)),
                0);
    }
    ~RawConn() { ::close(fd); }
  };
  RawConn conn(server.port());
  ASSERT_EQ(::send(conn.fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  net::FrameDecoder decoder;
  net::Frame response;
  bool done = false;
  while (!done) {
    char buf[4096];
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    decoder.Append(buf, static_cast<size_t>(n));
    StatusOr<bool> got = decoder.Next(&response);
    ASSERT_TRUE(got.ok());
    done = *got;
  }
  EXPECT_EQ(response.seq, 77u);
  EXPECT_EQ(response.status, StatusCode::kInvalidArgument);
}

TEST_F(NetFixture, BadMagicGetsTypedErrorResponseAndClose) {
  serve::BatchedEncoder encoder(model_, {});
  net::Server server(&encoder);
  ASSERT_TRUE(server.Start().ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string junk = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(fd, junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));

  // The server answers with one typed error frame, then closes.
  net::FrameDecoder decoder;
  net::Frame response;
  bool got_frame = false;
  bool closed = false;
  while (!closed) {
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      closed = true;
      break;
    }
    decoder.Append(buf, static_cast<size_t>(n));
    StatusOr<bool> got = decoder.Next(&response);
    ASSERT_TRUE(got.ok());
    if (*got) got_frame = true;
  }
  ::close(fd);
  ASSERT_TRUE(got_frame);
  EXPECT_EQ(response.status, StatusCode::kInvalidArgument);
  EXPECT_TRUE(closed);
}

TEST_F(NetFixture, SaturatedQueueShedsWithTypedOverloadedAndZeroDrops) {
  // Deterministic backpressure: the dispatcher stalls 200ms per batch,
  // the per-connection cap admits 2, the burst is 12 — all 12 frames
  // land at the event loop long before the first completion, so
  // exactly 2 are admitted and 10 shed. Every request gets an answer.
  serve::BatchedEncoderOptions eopts;
  eopts.max_batch = 1;
  eopts.max_wait_us = 0;
  eopts.cache_capacity = 0;
  eopts.dispatch_delay_us = 200000;
  serve::BatchedEncoder encoder(model_, eopts);

  net::ServerOptions sopts;
  sopts.max_inflight_per_conn = 2;
  net::Server server(&encoder, sopts);
  ASSERT_TRUE(server.Start().ok());
  StatusOr<net::Client> client = net::Client::Connect("127.0.0.1",
                                                      server.port());
  ASSERT_TRUE(client.ok());

  const uint32_t burst = 12;
  for (uint32_t seq = 1; seq <= burst; ++seq) {
    // Distinct tables: no coalescing, no cache hits.
    ASSERT_TRUE(client
                    ->SendEncodeRequest(serializer_->Serialize(
                                            corpus_->tables[seq % 20]),
                                        seq)
                    .ok());
  }
  uint32_t ok = 0, overloaded = 0, other = 0;
  for (uint32_t i = 0; i < burst; ++i) {
    StatusOr<net::EncodeResult> out = client->ReadResponse();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    if (out->status.ok()) {
      ++ok;
      EXPECT_GT(out->encoded.hidden.numel(), 0);
    } else if (out->status.code() == StatusCode::kOverloaded) {
      ++overloaded;
    } else {
      ++other;
    }
  }
  EXPECT_EQ(ok + overloaded, burst) << "every request must be answered";
  EXPECT_EQ(other, 0u);
  EXPECT_GE(overloaded, 1u);
  EXPECT_GE(ok, 2u);
}

TEST_F(NetFixture, ServerOptionsFromEnv) {
  setenv("TABREP_NET_MAX_QUEUE", "9", 1);
  setenv("TABREP_NET_MAX_INFLIGHT_PER_CONN", "3", 1);
  setenv("TABREP_SHARDS", "4", 1);
  setenv("TABREP_STEAL_THRESHOLD", "13", 1);
  net::ServerOptions options = net::ServerOptions::FromEnv();
  EXPECT_EQ(options.max_queue, 9);
  EXPECT_EQ(options.max_inflight_per_conn, 3);
  EXPECT_EQ(options.shards, 4);
  EXPECT_EQ(options.steal_threshold, 13);
  unsetenv("TABREP_NET_MAX_QUEUE");
  unsetenv("TABREP_NET_MAX_INFLIGHT_PER_CONN");
  unsetenv("TABREP_SHARDS");
  unsetenv("TABREP_STEAL_THRESHOLD");
  net::ServerOptions defaults = net::ServerOptions::FromEnv();
  EXPECT_EQ(defaults.max_queue, net::ServerOptions{}.max_queue);
  EXPECT_EQ(defaults.shards, net::ServerOptions{}.shards);
}

// --- Stats/health introspection plane. ----------------------------------

TEST(WireTypeTest, IntrospectionTypeBytesArePinned) {
  // Wire contract: the introspection types extend v1 additively and
  // their bytes are frozen (a future peer must agree on them).
  EXPECT_EQ(static_cast<uint8_t>(net::MessageType::kStatsRequest), 5);
  EXPECT_EQ(static_cast<uint8_t>(net::MessageType::kStatsResponse), 6);
  EXPECT_EQ(static_cast<uint8_t>(net::MessageType::kHealthRequest), 7);
  EXPECT_EQ(static_cast<uint8_t>(net::MessageType::kHealthResponse), 8);
}

TEST_F(NetFixture, StatsAndHealthRoundTripUnderLoad) {
  serve::BatchedEncoder encoder(model_, {});
  net::Server server(&encoder);
  ASSERT_TRUE(server.Start().ok());
  StatusOr<net::Client> client = net::Client::Connect("127.0.0.1",
                                                      server.port());
  ASSERT_TRUE(client.ok());

  // Some real traffic first so the metrics plane has content, with a
  // second connection hammering encodes while we poll — the stats path
  // must answer on the event loop regardless of encoder state.
  for (int i = 0; i < 4; ++i) {
    TokenizedTable t = serializer_->Serialize(corpus_->tables[i]);
    ASSERT_TRUE(client->Encode(t).ok());
  }
  std::thread hammer([&] {
    StatusOr<net::Client> c2 = net::Client::Connect("127.0.0.1",
                                                    server.port());
    if (!c2.ok()) return;
    for (int i = 0; i < 12; ++i) {
      (void)c2->Encode(serializer_->Serialize(corpus_->tables[i % 8]));
    }
  });

  for (int poll = 0; poll < 3; ++poll) {
    StatusOr<std::string> stats_json = client->Stats();
    ASSERT_TRUE(stats_json.ok()) << stats_json.status().ToString();
    Result<obs::JsonValue> stats = obs::JsonParse(*stats_json);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    const obs::JsonValue* port = stats->Get({"server", "port"});
    ASSERT_NE(port, nullptr);
    EXPECT_EQ(static_cast<uint16_t>(port->AsNumber()), server.port());
    ASSERT_NE(stats->Get({"server", "wire_version"}), nullptr);
    ASSERT_NE(stats->Get({"server", "uptime_us"}), nullptr);
    // The embedded registry dump is the same shape statscope parses.
    const obs::JsonValue* counters = stats->Get({"metrics", "counters"});
    ASSERT_NE(counters, nullptr);
    const obs::JsonValue* requests = counters->Find("tabrep.net.requests");
    ASSERT_NE(requests, nullptr);
    EXPECT_GE(requests->AsNumber(), 4.0);
    // Stage histograms carry count+sum (the delta-mean contract).
    const obs::JsonValue* histograms = stats->Get({"metrics", "histograms"});
    ASSERT_NE(histograms, nullptr);
    const obs::JsonValue* queue_h =
        histograms->Find("tabrep.serve.stage.queue.us");
    ASSERT_NE(queue_h, nullptr);
    ASSERT_NE(queue_h->Find("count"), nullptr);
    ASSERT_NE(queue_h->Find("sum"), nullptr);
    EXPECT_GE(queue_h->Find("count")->AsNumber(), 1.0);

    StatusOr<std::string> health_json = client->Health();
    ASSERT_TRUE(health_json.ok()) << health_json.status().ToString();
    Result<obs::JsonValue> health = obs::JsonParse(*health_json);
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    ASSERT_NE(health->Find("status"), nullptr);
    EXPECT_EQ(health->Find("status")->AsString(), "ok");
    for (const char* key : {"queue_depth", "inflight", "connections",
                            "shed_rate", "uptime_us"}) {
      ASSERT_NE(health->Find(key), nullptr) << key;
    }
    EXPECT_GE(health->Find("queue_depth")->AsNumber(), 0.0);
  }
  hammer.join();
}

TEST_F(NetFixture, ClusterBackedServerEchoesVersionAndTopology) {
  // The server is topology-agnostic: hand it a 2-shard cluster and the
  // whole wire contract must hold, with every encode response carrying
  // the weights version it ran under and the stats plane growing a
  // "cluster" section.
  serve::ClusterOptions copts;
  copts.shards = 2;
  serve::Cluster cluster(model_, copts);
  net::ServerOptions sopts;
  sopts.shards = 2;
  net::Server server(&cluster, sopts);
  ASSERT_TRUE(server.Start().ok());

  StatusOr<net::Client> client = net::Client::Connect("127.0.0.1",
                                                      server.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 6; ++i) {
    TokenizedTable t = serializer_->Serialize(corpus_->tables[i]);
    Rng rng(1);
    models::EncodeOptions opts;
    opts.inference = true;
    Tensor direct = model_->Encode(t, rng, opts).hidden.value();
    StatusOr<net::EncodeResult> result = client->Encode(t);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result->status.ok()) << result->status.ToString();
    EXPECT_TRUE(BitwiseEqual(result->encoded.hidden, direct))
        << "table " << i << " through the cluster";
    EXPECT_EQ(result->encoded.weights_version, 1u);
  }

  StatusOr<std::string> stats_json = client->Stats();
  ASSERT_TRUE(stats_json.ok());
  Result<obs::JsonValue> stats = obs::JsonParse(*stats_json);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const obs::JsonValue* shards = stats->Get({"server", "cluster", "shards"});
  ASSERT_NE(shards, nullptr) << *stats_json;
  EXPECT_EQ(shards->AsNumber(), 2.0);
  const obs::JsonValue* version =
      stats->Get({"server", "cluster", "weights_version"});
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->AsNumber(), 1.0);
  ASSERT_NE(stats->Get({"server", "cluster", "shard_depth"}), nullptr);

  StatusOr<std::string> health_json = client->Health();
  ASSERT_TRUE(health_json.ok());
  Result<obs::JsonValue> health = obs::JsonParse(*health_json);
  ASSERT_TRUE(health.ok());
  ASSERT_NE(health->Find("shards"), nullptr) << *health_json;
  EXPECT_EQ(health->Find("shards")->AsNumber(), 2.0);
  ASSERT_NE(health->Find("weights_version"), nullptr);
  EXPECT_EQ(health->Find("weights_version")->AsNumber(), 1.0);
}

TEST_F(NetFixture, StatsRequestWithPayloadIsTypedInvalidArgument) {
  serve::BatchedEncoder encoder(model_, {});
  net::Server server(&encoder);
  ASSERT_TRUE(server.Start().ok());

  // Introspection requests carry no payload; a non-empty one must come
  // back as a typed error on the matching response type, and the
  // connection must stay usable (same contract as malformed encodes).
  net::Frame bad;
  bad.type = net::MessageType::kStatsRequest;
  bad.seq = 31;
  bad.payload = "unexpected";
  const std::string wire = net::EncodeFrame(bad);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  net::FrameDecoder decoder;
  net::Frame response;
  bool done = false;
  while (!done) {
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    decoder.Append(buf, static_cast<size_t>(n));
    StatusOr<bool> got = decoder.Next(&response);
    ASSERT_TRUE(got.ok());
    done = *got;
  }
  EXPECT_EQ(response.type, net::MessageType::kStatsResponse);
  EXPECT_EQ(response.seq, 31u);
  EXPECT_EQ(response.status, StatusCode::kInvalidArgument);

  // Still alive: a well-formed health request on the same socket works.
  net::Frame good;
  good.type = net::MessageType::kHealthRequest;
  good.seq = 32;
  const std::string wire2 = net::EncodeFrame(good);
  ASSERT_EQ(::send(fd, wire2.data(), wire2.size(), 0),
            static_cast<ssize_t>(wire2.size()));
  done = false;
  while (!done) {
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    decoder.Append(buf, static_cast<size_t>(n));
    StatusOr<bool> got = decoder.Next(&response);
    ASSERT_TRUE(got.ok());
    done = *got;
  }
  ::close(fd);
  EXPECT_EQ(response.type, net::MessageType::kHealthResponse);
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_TRUE(obs::JsonParse(response.payload).ok());
}

TEST_F(NetFixture, PipelinedStatsOvertakesSlowEncodes) {
  // kStats/kHealth are answered directly on the event loop: a stats
  // frame pipelined behind slow encode requests comes back FIRST (the
  // health plane must work while the encoder is saturated), while the
  // encode responses themselves keep FIFO order.
  serve::BatchedEncoderOptions eopts;
  eopts.max_batch = 1;
  eopts.max_wait_us = 0;
  eopts.cache_capacity = 0;
  eopts.dispatch_delay_us = 100000;  // 100ms/batch: encodes are slow
  serve::BatchedEncoder encoder(model_, eopts);
  net::Server server(&encoder);
  ASSERT_TRUE(server.Start().ok());
  StatusOr<net::Client> client = net::Client::Connect("127.0.0.1",
                                                      server.port());
  ASSERT_TRUE(client.ok());

  const uint32_t n = 2;
  for (uint32_t seq = 1; seq <= n; ++seq) {
    TokenizedTable t = serializer_->Serialize(corpus_->tables[seq]);
    ASSERT_TRUE(client->SendEncodeRequest(t, seq).ok());
  }
  const uint32_t stats_seq = 99;
  ASSERT_TRUE(client->SendStatsRequest(stats_seq).ok());

  StatusOr<net::Frame> first = client->ReadAnyFrame();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->type, net::MessageType::kStatsResponse);
  EXPECT_EQ(first->seq, stats_seq);
  EXPECT_TRUE(obs::JsonParse(first->payload).ok());

  for (uint32_t seq = 1; seq <= n; ++seq) {
    StatusOr<net::EncodeResult> out = client->ReadResponse();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out->seq, seq);  // encode-vs-encode FIFO is preserved
    EXPECT_TRUE(out->status.ok()) << out->status.ToString();
  }
}

TEST_F(NetFixture, StopWhileClientsConnectedIsClean) {
  serve::BatchedEncoder encoder(model_, {});
  auto server = std::make_unique<net::Server>(&encoder);
  ASSERT_TRUE(server->Start().ok());
  StatusOr<net::Client> client = net::Client::Connect("127.0.0.1",
                                                      server->port());
  ASSERT_TRUE(client.ok());
  TokenizedTable t = serializer_->Serialize(corpus_->tables[3]);
  ASSERT_TRUE(client->Encode(t).ok());
  server.reset();  // Stop + destructor while the client holds its socket
  // The client now sees a closed connection as a transport error, not
  // a hang.
  StatusOr<net::EncodeResult> after = client->Encode(t);
  EXPECT_FALSE(after.ok());
}

}  // namespace
}  // namespace tabrep
