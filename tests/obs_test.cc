#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "pretrain/trainer.h"
#include "runtime/runtime.h"
#include "serialize/vocab_builder.h"
#include "table/synth.h"
#include "tasks/finetune.h"

namespace tabrep {
namespace {

// ---------------------------------------------------------------------------
// JSON helpers

TEST(ObsJsonTest, EscapeAndNumber) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(obs::JsonNumber(2.0), "2");
  // Non-finite values must stay loadable.
  EXPECT_EQ(obs::JsonNumber(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(obs::JsonNumber(std::nan("")), "0");
}

TEST(ObsJsonTest, LintAcceptsAndRejects) {
  EXPECT_TRUE(obs::JsonLint("{}"));
  EXPECT_TRUE(obs::JsonLint("[1, 2.5, -3e4, \"x\", true, null]"));
  EXPECT_TRUE(obs::JsonLint("{\"a\":{\"b\":[{}]}}"));
  EXPECT_FALSE(obs::JsonLint(""));
  EXPECT_FALSE(obs::JsonLint("{"));
  EXPECT_FALSE(obs::JsonLint("{\"a\":1,}"));
  EXPECT_FALSE(obs::JsonLint("[1 2]"));
  EXPECT_FALSE(obs::JsonLint("{\"a\":1} extra"));
}

TEST(ObsJsonTest, EscapeKeepsInvalidUtf8Loadable) {
  // Synthetic cell values can carry arbitrary bytes; the escaped form
  // must still be a valid JSON string (invalid sequences -> U+FFFD).
  const std::string cases[] = {
      std::string("\xff\xfe", 2),          // not UTF-8 at all
      std::string("ab\xc3", 3),            // truncated 2-byte sequence
      std::string("\xe2\x82", 2),          // truncated 3-byte sequence
      std::string("\xc0\xaf", 2),          // overlong encoding
      std::string("ok \xf0\x9f\x99\x82"),  // valid 4-byte emoji passes
  };
  for (const std::string& raw : cases) {
    const std::string doc = "{\"v\":\"" + obs::JsonEscape(raw) + "\"}";
    EXPECT_TRUE(obs::JsonLint(doc)) << doc;
    EXPECT_TRUE(obs::JsonParse(doc).ok()) << doc;
  }
  // Valid multibyte input passes through unchanged.
  EXPECT_EQ(obs::JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(ObsJsonTest, ParseRoundTrip) {
  Result<obs::JsonValue> doc = obs::JsonParse(
      "{\"label\":\"x\",\"n\":-2.5e2,\"ok\":true,\"list\":[1,\"two\",null],"
      "\"nested\":{\"p95\":42}}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("label")->AsString(), "x");
  EXPECT_EQ(doc->Find("n")->AsNumber(), -250.0);
  EXPECT_TRUE(doc->Find("ok")->AsBool());
  ASSERT_EQ(doc->Find("list")->items().size(), 3u);
  EXPECT_EQ(doc->Get({"nested", "p95"})->AsNumber(), 42.0);
  EXPECT_EQ(doc->Get({"nested", "missing"}), nullptr);
  // Escapes decode, surrogate pairs combine.
  Result<obs::JsonValue> esc =
      obs::JsonParse("\"a\\n\\u0041\\ud83d\\ude42\"");
  ASSERT_TRUE(esc.ok());
  EXPECT_EQ(esc->AsString(), "a\nA\xf0\x9f\x99\x82");
  EXPECT_FALSE(obs::JsonParse("{\"a\":}").ok());
}

// ---------------------------------------------------------------------------
// Metrics registry

TEST(ObsMetricsTest, RegistryReturnsStableReferences) {
  obs::Counter& a = obs::Registry::Get().counter("tabrep.test.stable");
  obs::Counter& b = obs::Registry::Get().counter("tabrep.test.stable");
  EXPECT_EQ(&a, &b);
  a.Reset();
  a.Increment(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(ObsMetricsTest, ConcurrentIncrementsAreExact) {
  obs::Counter& counter = obs::Registry::Get().counter("tabrep.test.conc");
  obs::Histogram& hist = obs::Registry::Get().histogram("tabrep.test.conc.us");
  counter.Reset();
  hist.Reset();
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.Increment();
        hist.Record(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kThreads) * kIters);
  const obs::HistogramStats stats = hist.Stats();
  EXPECT_EQ(stats.count, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, static_cast<double>(kThreads));
}

TEST(ObsMetricsTest, HistogramStatsSanity) {
  obs::Histogram hist;
  EXPECT_EQ(hist.Stats().count, 0u);
  for (int i = 1; i <= 1000; ++i) hist.Record(static_cast<double>(i));
  const obs::HistogramStats stats = hist.Stats();
  EXPECT_EQ(stats.count, 1000u);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 1000.0);
  EXPECT_NEAR(stats.mean, 500.5, 1e-9);
  // Power-of-two buckets: percentiles are interpolated, so allow a
  // bucket's worth of slack but demand the right order of magnitude.
  EXPECT_GT(stats.p50, 250.0);
  EXPECT_LT(stats.p50, 1000.0);
  EXPECT_GE(stats.p95, stats.p50);
  EXPECT_GE(stats.p99, stats.p95);
  EXPECT_LE(stats.p99, stats.max);
  hist.Reset();
  EXPECT_EQ(hist.Stats().count, 0u);
}

TEST(ObsMetricsTest, RegistryJsonIsWellFormed) {
  obs::Registry::Get().counter("tabrep.test.json").Increment();
  obs::Registry::Get().gauge("tabrep.test.gauge").Set(1.5);
  obs::Registry::Get().histogram("tabrep.test.hist").Record(3.0);
  EXPECT_TRUE(obs::JsonLint(obs::Registry::Get().ToJson()));
  EXPECT_TRUE(obs::JsonLint(obs::ReportJson("obs_test")));
}

// ---------------------------------------------------------------------------
// Tracing

TEST(ObsTraceTest, SpanNestingAndChromeExport) {
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "tracing compiled out";
  obs::SetTracingEnabled(true);
  obs::ClearTrace();
  {
    TABREP_TRACE_SPAN("test.outer");
    {
      TABREP_TRACE_SPAN("test.inner");
    }
  }
  obs::SetTracingEnabled(false);

  std::vector<obs::TraceEvent> events = obs::CollectTrace();
  ASSERT_EQ(events.size(), 2u);
  // CollectTrace orders by (lane, start): outer opened first.
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_STREQ(events[1].name, "test.inner");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].depth, 1u);
  // The inner span nests inside the outer both in time and in the
  // parent's child-time accounting.
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[0].duration_ns, events[1].duration_ns);
  EXPECT_GE(events[0].child_ns, events[1].duration_ns);

  const std::string chrome = obs::ChromeTraceJson();
  EXPECT_TRUE(obs::JsonLint(chrome));
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("test.inner"), std::string::npos);

  std::vector<obs::OpProfile> profile = obs::ProfileTable();
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_EQ(profile[0].name, "test.outer");  // sorted by total desc
  EXPECT_EQ(profile[0].count, 1u);
  EXPECT_LE(profile[0].self_ms, profile[0].total_ms);
  EXPECT_TRUE(obs::JsonLint(obs::ProfileJson()));
  EXPECT_FALSE(obs::ProfileTableText().empty());
  obs::ClearTrace();
}

TEST(ObsTraceTest, DisabledSpansRecordNothing) {
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "tracing compiled out";
  obs::SetTracingEnabled(false);
  obs::ClearTrace();
  {
    TABREP_TRACE_SPAN("test.disabled");
  }
  EXPECT_TRUE(obs::CollectTrace().empty());
  EXPECT_TRUE(obs::ProfileTableText().empty());
}

TEST(ObsTraceTest, SpansFromPoolThreadsCarryLanes) {
  if (!obs::TracingCompiledIn()) GTEST_SKIP() << "tracing compiled out";
  runtime::Configure({.num_threads = 4});
  obs::SetTracingEnabled(true);
  obs::ClearTrace();
  std::atomic<int64_t> sum{0};
  runtime::ParallelFor(0, 64, 1, [&](int64_t lo, int64_t hi) {
    TABREP_TRACE_SPAN("test.chunk");
    for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  obs::SetTracingEnabled(false);
  std::vector<obs::TraceEvent> events = obs::CollectTrace();
  // One of the 64 spans per chunk, plus the runtime.chunk spans the
  // pool itself opens around each chunk body.
  int64_t test_chunks = 0;
  for (const obs::TraceEvent& e : events) {
    if (std::string_view(e.name) == "test.chunk") ++test_chunks;
  }
  EXPECT_EQ(test_chunks, 64);
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
  EXPECT_TRUE(obs::JsonLint(obs::ChromeTraceJson()));
  obs::ClearTrace();
  runtime::Configure({.num_threads = 0});
}

// ---------------------------------------------------------------------------
// Sinks

TEST(ObsSinkTest, StepRecordAndRender) {
  obs::StepRecord record("pretrain", 7);
  record.Add("mlm_loss", 5.25).Add("lr", 0.001, 6);
  EXPECT_DOUBLE_EQ(record.Get("mlm_loss"), 5.25);
  EXPECT_DOUBLE_EQ(record.Get("missing", -1.0), -1.0);
  const std::string line = obs::StdoutSink::Render(record);
  EXPECT_NE(line.find("pretrain"), std::string::npos);
  EXPECT_NE(line.find("step 7"), std::string::npos);
  EXPECT_NE(line.find("mlm_loss"), std::string::npos);
}

TEST(ObsSinkTest, MemoryAndFanout) {
  obs::MemorySink a, b;
  obs::FanoutSink fan({&a, &b});
  fan.Record(obs::StepRecord("s", 0).Add("x", 1.0));
  fan.Record(obs::StepRecord("s", 1).Add("x", 2.0));
  ASSERT_EQ(a.records().size(), 2u);
  ASSERT_EQ(b.records().size(), 2u);
  EXPECT_DOUBLE_EQ(b.records()[1].Get("x"), 2.0);
}

TEST(ObsSinkTest, JsonlRoundTrip) {
  const std::string path = "obs_test_sink.jsonl";
  {
    obs::JsonlSink sink(path);
    ASSERT_TRUE(sink.status().ok()) << sink.status().ToString();
    sink.Record(obs::StepRecord("pretrain", 0).Add("mlm_loss", 5.5));
    sink.Record(obs::StepRecord("pretrain.eval", 0).Add("mlm_acc", 0.25));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& l : lines) {
    EXPECT_TRUE(obs::JsonLint(l)) << l;
    EXPECT_NE(l.find("\"stream\""), std::string::npos);
    EXPECT_NE(l.find("\"step\""), std::string::npos);
  }
  EXPECT_NE(lines[0].find("\"mlm_loss\""), std::string::npos);
  EXPECT_NE(lines[1].find("pretrain.eval"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsSinkTest, KindDiscriminatesTrainFromEvalRows) {
  // Default is "train"; the 3-arg constructor sets "eval" rows apart so
  // one JSONL file can carry both without string-matching stream names.
  obs::StepRecord train("finetune.imputation", 3);
  EXPECT_EQ(train.kind, "train");
  obs::StepRecord eval_rec("finetune.imputation", "eval", 3);
  EXPECT_EQ(eval_rec.kind, "eval");

  const std::string train_line = obs::JsonlSink::Render(train);
  const std::string eval_line = obs::JsonlSink::Render(eval_rec);
  EXPECT_TRUE(obs::JsonLint(train_line));
  EXPECT_TRUE(obs::JsonLint(eval_line));
  Result<obs::JsonValue> doc = obs::JsonParse(eval_line);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("kind")->AsString(), "eval");
  EXPECT_EQ(doc->Find("stream")->AsString(), "finetune.imputation");
  Result<obs::JsonValue> tdoc = obs::JsonParse(train_line);
  ASSERT_TRUE(tdoc.ok());
  EXPECT_EQ(tdoc->Find("kind")->AsString(), "train");
}

TEST(ObsSinkTest, ReportBuilderEmitsPerStepAggregates) {
  obs::MemorySink sink;
  tasks::ReportBuilder report(/*steps=*/2, &sink, "finetune.test");
  // Two examples per step; the sink sees the per-step means while the
  // report keeps its tail-window semantics.
  report.Record(0, 4.0f, /*correct=*/1, /*counted=*/1);
  report.Record(0, 2.0f, /*correct=*/0, /*counted=*/1);
  report.Record(1, 1.0f, /*correct=*/1, /*counted=*/1);
  report.Record(1, 3.0f, /*correct=*/1, /*counted=*/1);
  FineTuneReport built = report.Build();
  std::vector<obs::StepRecord> records = sink.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].stream, "finetune.test");
  EXPECT_EQ(records[0].step, 0);
  EXPECT_DOUBLE_EQ(records[0].Get("loss"), 3.0);
  EXPECT_DOUBLE_EQ(records[0].Get("acc"), 0.5);
  EXPECT_EQ(records[1].step, 1);
  EXPECT_DOUBLE_EQ(records[1].Get("loss"), 2.0);
  EXPECT_DOUBLE_EQ(records[1].Get("acc"), 1.0);
  // Tail window = last quarter of 2 steps = step >= 1.
  EXPECT_FLOAT_EQ(built.final_loss, 2.0f);
  EXPECT_FLOAT_EQ(built.accuracy, 1.0f);
}

// ---------------------------------------------------------------------------
// Logging (satellite: thread-safe level accessors)

TEST(ObsLoggingTest, ConcurrentLevelAccessIsSafe) {
  const LogLevel before = GetLogLevel();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 500; ++i) {
        SetLogLevel(t % 2 == 0 ? LogLevel::kWarning : LogLevel::kError);
        const LogLevel seen = GetLogLevel();
        EXPECT_TRUE(seen == LogLevel::kWarning || seen == LogLevel::kError);
        TABREP_LOG(Debug) << "suppressed either way " << i;
      }
    });
  }
  for (auto& th : threads) th.join();
  SetLogLevel(before);
}

// ---------------------------------------------------------------------------
// Determinism: observability must never perturb training numerics.

class ObsDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 12;
    opts.max_rows = 5;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 800;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    SerializerOptions sopts;
    sopts.max_tokens = 64;
    serializer_ = new TableSerializer(tokenizer_, sopts);
  }
  static void TearDownTestSuite() {
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
  }

  /// Runs a short pretraining and returns its curve.
  static std::vector<PretrainLogEntry> RunPretrain(obs::MetricsSink* sink) {
    ModelConfig config;
    config.family = ModelFamily::kVanilla;
    config.vocab_size = tokenizer_->vocab().size();
    config.transformer.dim = 32;
    config.transformer.num_layers = 1;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 64;
    config.transformer.dropout = 0.1f;
    config.max_position = 96;
    TableEncoderModel model(config);
    PretrainConfig pconfig;
    pconfig.steps = 4;
    pconfig.batch_size = 2;
    pconfig.sink = sink;
    PretrainTrainer trainer(&model, serializer_, pconfig);
    return trainer.Train(*corpus_);
  }

  static void ExpectIdentical(const std::vector<PretrainLogEntry>& a,
                              const std::vector<PretrainLogEntry>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].mlm_loss, b[i].mlm_loss) << "step " << i;
      EXPECT_EQ(a[i].mlm_accuracy, b[i].mlm_accuracy) << "step " << i;
      EXPECT_EQ(a[i].lr, b[i].lr) << "step " << i;
    }
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
};

TableCorpus* ObsDeterminismTest::corpus_ = nullptr;
WordPieceTokenizer* ObsDeterminismTest::tokenizer_ = nullptr;
TableSerializer* ObsDeterminismTest::serializer_ = nullptr;

TEST_F(ObsDeterminismTest, TracingOnOffBitwiseIdentical) {
  obs::SetTracingEnabled(false);
  std::vector<PretrainLogEntry> off = RunPretrain(nullptr);
  obs::SetTracingEnabled(true);
  obs::ClearTrace();
  std::vector<PretrainLogEntry> on = RunPretrain(nullptr);
  obs::SetTracingEnabled(false);
  if (obs::TracingCompiledIn()) {
    EXPECT_FALSE(obs::CollectTrace().empty());
  }
  obs::ClearTrace();
  ExpectIdentical(off, on);
}

TEST_F(ObsDeterminismTest, SinkEmissionDoesNotPerturbTraining) {
  std::vector<PretrainLogEntry> silent = RunPretrain(nullptr);
  obs::MemorySink sink;
  std::vector<PretrainLogEntry> observed = RunPretrain(&sink);
  ExpectIdentical(silent, observed);
  ASSERT_EQ(sink.records().size(), silent.size());
  EXPECT_EQ(sink.records()[0].stream, "pretrain");
  EXPECT_EQ(static_cast<float>(sink.records()[0].Get("mlm_loss")),
            silent[0].mlm_loss);
}

TEST_F(ObsDeterminismTest, ThreadCountInvariant) {
  runtime::Configure({.num_threads = 1});
  std::vector<PretrainLogEntry> one = RunPretrain(nullptr);
  runtime::Configure({.num_threads = 4});
  std::vector<PretrainLogEntry> four = RunPretrain(nullptr);
  runtime::Configure({.num_threads = 0});
  ExpectIdentical(one, four);
}

}  // namespace
}  // namespace tabrep
