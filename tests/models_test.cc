#include <gtest/gtest.h>

#include <cmath>

#include "models/heads.h"
#include "models/table_encoder.h"
#include "models/visibility.h"
#include "serialize/vocab_builder.h"
#include "table/synth.h"
#include "tensor/ops.h"

namespace tabrep {
namespace {

/// Shared tiny-corpus fixture: one tokenizer + serializer for all
/// model tests (building the vocab is the slow part).
class ModelsFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 30;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 1500;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    SerializerOptions sopts;
    sopts.max_tokens = 96;
    serializer_ = new TableSerializer(tokenizer_, sopts);
  }
  static void TearDownTestSuite() {
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static ModelConfig TinyConfig(ModelFamily family) {
    ModelConfig config;
    config.family = family;
    config.vocab_size = tokenizer_->vocab().size();
    config.entity_vocab_size = corpus_->entities.size();
    config.transformer.dim = 32;
    config.transformer.num_layers = 1;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 64;
    config.transformer.dropout = 0.0f;
    config.max_position = 128;
    return config;
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
};

TableCorpus* ModelsFixture::corpus_ = nullptr;
WordPieceTokenizer* ModelsFixture::tokenizer_ = nullptr;
TableSerializer* ModelsFixture::serializer_ = nullptr;

TEST_F(ModelsFixture, FamilyNames) {
  EXPECT_EQ(ModelFamilyName(ModelFamily::kVanilla), "vanilla");
  EXPECT_EQ(ModelFamilyName(ModelFamily::kTapas), "tapas");
  EXPECT_EQ(ModelFamilyName(ModelFamily::kTabert), "tabert");
  EXPECT_EQ(ModelFamilyName(ModelFamily::kTurl), "turl");
  EXPECT_EQ(ModelFamilyName(ModelFamily::kMate), "mate");
}

TEST_F(ModelsFixture, VisibilityMatrixStructure) {
  TokenizedTable serialized = serializer_->Serialize(MakeCountryDemoTable());
  Tensor bias = BuildTurlVisibility(serialized);
  const int64_t t = serialized.size();
  ASSERT_EQ(bias.rows(), t);
  // Diagonal always visible.
  for (int64_t i = 0; i < t; ++i) EXPECT_EQ(bias.at(i, i), 0.0f);
  // Context/specials see everything and are seen by everything.
  for (int64_t i = 0; i < t; ++i) {
    const TokenInfo& a = serialized.tokens[static_cast<size_t>(i)];
    if (a.row == 0 && a.column == 0) {
      for (int64_t j = 0; j < t; ++j) {
        EXPECT_EQ(bias.at(i, j), 0.0f);
        EXPECT_EQ(bias.at(j, i), 0.0f);
      }
    }
  }
  // Cells in different rows and columns are mutually masked.
  const CellSpan* a = serialized.FindCell(0, 0);
  const CellSpan* b = serialized.FindCell(1, 1);
  ASSERT_TRUE(a && b);
  EXPECT_LT(bias.at(a->begin, b->begin), 0.0f);
  // Same row visible.
  const CellSpan* c = serialized.FindCell(0, 1);
  ASSERT_TRUE(c);
  EXPECT_EQ(bias.at(a->begin, c->begin), 0.0f);
  // Same column visible.
  const CellSpan* d = serialized.FindCell(1, 0);
  ASSERT_TRUE(d);
  EXPECT_EQ(bias.at(a->begin, d->begin), 0.0f);
}

TEST_F(ModelsFixture, VisibilityIsSymmetric) {
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[1]);
  Tensor bias = BuildTurlVisibility(serialized);
  for (int64_t i = 0; i < bias.rows(); ++i) {
    for (int64_t j = 0; j < bias.cols(); ++j) {
      EXPECT_EQ(bias.at(i, j), bias.at(j, i));
    }
  }
}

TEST_F(ModelsFixture, MateBiasesPartitionHeads) {
  TokenizedTable serialized = serializer_->Serialize(MakeCountryDemoTable());
  auto biases = BuildMateBiases(serialized, 4);
  ASSERT_EQ(biases.size(), 4u);
  // Head 0 (row head): same-row cell pair visible, same-col masked.
  const CellSpan* a = serialized.FindCell(0, 0);
  const CellSpan* same_row = serialized.FindCell(0, 1);
  const CellSpan* same_col = serialized.FindCell(1, 0);
  ASSERT_TRUE(a && same_row && same_col);
  EXPECT_EQ(biases[0].at(a->begin, same_row->begin), 0.0f);
  EXPECT_LT(biases[0].at(a->begin, same_col->begin), 0.0f);
  // Head 3 (column head): the reverse.
  EXPECT_LT(biases[3].at(a->begin, same_row->begin), 0.0f);
  EXPECT_EQ(biases[3].at(a->begin, same_col->begin), 0.0f);
}

TEST_F(ModelsFixture, VisibleFractionDenseVsSparse) {
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[0]);
  Tensor turl = BuildTurlVisibility(serialized);
  EXPECT_LT(VisibleFraction(turl), 1.0);
  EXPECT_GT(VisibleFraction(turl), 0.0);
  EXPECT_EQ(VisibleFraction(Tensor::Zeros({4, 4})), 1.0);
}

class FamilySweep : public ModelsFixture,
                    public ::testing::WithParamInterface<ModelFamily> {};

TEST_P(FamilySweep, EncodeProducesFiniteHiddenAndCells) {
  ModelConfig config = TinyConfig(GetParam());
  TableEncoderModel model(config);
  model.SetTraining(false);
  Rng rng(3);
  TokenizedTable serialized = serializer_->Serialize(MakeCountryDemoTable());
  models::Encoded enc =
      model.Encode(serialized, rng, {.capture_attention = true});
  EXPECT_EQ(enc.hidden.shape(),
            (std::vector<int64_t>{serialized.size(), config.transformer.dim}));
  ASSERT_TRUE(enc.has_cells);
  EXPECT_EQ(enc.cells.shape()[0],
            static_cast<int64_t>(serialized.cells.size()));
  for (int64_t i = 0; i < enc.hidden.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(enc.hidden.value()[i]));
  }
  EXPECT_EQ(enc.attention.size(),
            static_cast<size_t>(config.transformer.num_layers));
}

TEST_P(FamilySweep, DeterministicInEvalMode) {
  ModelConfig config = TinyConfig(GetParam());
  TableEncoderModel model(config);
  model.SetTraining(false);
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[2]);
  Rng rng_a(1), rng_b(2);  // different rngs: eval must not use them
  models::Encoded a = model.Encode(serialized, rng_a);
  models::Encoded b = model.Encode(serialized, rng_b);
  EXPECT_TRUE(a.hidden.value().AllClose(b.hidden.value()));
}

TEST_P(FamilySweep, GradientsReachEmbeddings) {
  ModelConfig config = TinyConfig(GetParam());
  TableEncoderModel model(config);
  Rng rng(4);
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[3]);
  models::Encoded enc = model.Encode(serialized, rng);
  ag::Variable loss = ag::MeanAll(ag::Mul(enc.hidden, enc.hidden));
  ag::Backward(loss);
  EXPECT_GT(ops::Norm(model.token_embedding_weight().grad()), 0.0f);
}

TEST_P(FamilySweep, StateDictRoundTripPreservesOutput) {
  ModelConfig config = TinyConfig(GetParam());
  config.seed = 10;
  TableEncoderModel a(config);
  config.seed = 99;  // different init
  TableEncoderModel b(config);
  a.SetTraining(false);
  b.SetTraining(false);
  Rng rng(5);
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[4]);
  Tensor before = b.Encode(serialized, rng).hidden.value().Clone();
  ASSERT_TRUE(b.ImportStateDict(a.ExportStateDict()).ok());
  Tensor after_a = a.Encode(serialized, rng).hidden.value();
  Tensor after_b = b.Encode(serialized, rng).hidden.value();
  EXPECT_TRUE(after_a.AllClose(after_b, 1e-5f));
  EXPECT_FALSE(before.AllClose(after_b, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilySweep,
    ::testing::Values(ModelFamily::kVanilla, ModelFamily::kTapas,
                      ModelFamily::kTabert, ModelFamily::kTurl,
                      ModelFamily::kMate),
    [](const ::testing::TestParamInfo<ModelFamily>& info) {
      return std::string(ModelFamilyName(info.param));
    });

TEST_F(ModelsFixture, TurlAttentionRespectsVisibility) {
  ModelConfig config = TinyConfig(ModelFamily::kTurl);
  TableEncoderModel model(config);
  model.SetTraining(false);
  Rng rng(6);
  TokenizedTable serialized = serializer_->Serialize(MakeCountryDemoTable());
  models::Encoded enc = model.Encode(
      serialized, rng, {.need_cells = false, .capture_attention = true});
  Tensor bias = BuildTurlVisibility(serialized);
  for (const Tensor& probs : enc.attention) {
    for (int64_t i = 0; i < probs.rows(); ++i) {
      for (int64_t j = 0; j < probs.cols(); ++j) {
        if (bias.at(i, j) < 0.0f) {
          EXPECT_LT(probs.at(i, j), 1e-5f) << i << "," << j;
        }
      }
    }
  }
}

TEST_F(ModelsFixture, StructuralChannelsChangeEncoding) {
  // Tapas must distinguish two tables whose serializations share token
  // ids but differ in cell coordinates; we simulate by comparing the
  // same table encoded normally vs with a row permutation. Vanilla sees
  // different token order; the test here just verifies Tapas output
  // depends on the row channel: zeroing rows changes encoding.
  ModelConfig config = TinyConfig(ModelFamily::kTapas);
  TableEncoderModel model(config);
  model.SetTraining(false);
  Rng rng(7);
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[5]);
  Tensor normal = model.Encode(serialized, rng).hidden.value().Clone();
  TokenizedTable flattened = serialized;
  for (TokenInfo& tok : flattened.tokens) tok.row = 0;
  Tensor no_rows = model.Encode(flattened, rng).hidden.value();
  EXPECT_FALSE(normal.AllClose(no_rows, 1e-4f));
}

TEST_F(ModelsFixture, ClsAndPooledShapes) {
  ModelConfig config = TinyConfig(ModelFamily::kVanilla);
  TableEncoderModel model(config);
  model.SetTraining(false);
  Rng rng(8);
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[6]);
  models::Encoded enc = model.Encode(serialized, rng, {.need_cells = false});
  EXPECT_EQ(model.Cls(enc).shape(), (std::vector<int64_t>{1, 32}));
  EXPECT_EQ(model.Pooled(enc).shape(), (std::vector<int64_t>{1, 32}));
}

TEST_F(ModelsFixture, MlmHeadShapesAndTying) {
  ModelConfig config = TinyConfig(ModelFamily::kVanilla);
  TableEncoderModel model(config);
  model.SetTraining(false);
  Rng rng(9);
  models::MlmHead head(&model, rng);
  head.SetTraining(false);
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[7]);
  models::Encoded enc = model.Encode(serialized, rng, {.need_cells = false});
  ag::Variable logits = head.Forward(enc.hidden);
  EXPECT_EQ(logits.shape(),
            (std::vector<int64_t>{serialized.size(), config.vocab_size}));
  // Weight tying: gradient into logits reaches the embedding table.
  ag::Backward(ag::MeanAll(logits));
  EXPECT_GT(ops::Norm(model.token_embedding_weight().grad()), 0.0f);
}

TEST_F(ModelsFixture, EntityHeadShape) {
  ModelConfig config = TinyConfig(ModelFamily::kTurl);
  TableEncoderModel model(config);
  model.SetTraining(false);
  Rng rng(10);
  models::EntityRecoveryHead head(&model, rng);
  head.SetTraining(false);
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[8]);
  models::Encoded enc = model.Encode(serialized, rng);
  ASSERT_TRUE(enc.has_cells);
  ag::Variable logits = head.Forward(enc.cells);
  EXPECT_EQ(logits.shape()[1], config.entity_vocab_size);
}

TEST_F(ModelsFixture, CellSelectionHeadShape) {
  ModelConfig config = TinyConfig(ModelFamily::kTapas);
  TableEncoderModel model(config);
  model.SetTraining(false);
  Rng rng(11);
  models::CellSelectionHead head(config.transformer.dim, rng);
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[9]);
  models::Encoded enc = model.Encode(serialized, rng);
  ASSERT_TRUE(enc.has_cells);
  ag::Variable logits = head.Forward(enc.cells);
  EXPECT_EQ(logits.shape(),
            (std::vector<int64_t>{
                1, static_cast<int64_t>(serialized.cells.size())}));
}

TEST_F(ModelsFixture, CheckpointSaveLoadViaFile) {
  ModelConfig config = TinyConfig(ModelFamily::kTapas);
  TableEncoderModel a(config);
  const std::string path = ::testing::TempDir() + "/model.bin";
  ASSERT_TRUE(SaveTensors(a.ExportStateDict(), path).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  config.seed = 123;
  TableEncoderModel b(config);
  ASSERT_TRUE(b.ImportStateDict(*loaded).ok());
  a.SetTraining(false);
  b.SetTraining(false);
  Rng rng(12);
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[0]);
  EXPECT_TRUE(a.Encode(serialized, rng)
                  .hidden.value()
                  .AllClose(b.Encode(serialized, rng).hidden.value(), 1e-5f));
}

}  // namespace
}  // namespace tabrep
