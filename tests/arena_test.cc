#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "obs/metrics.h"
#include "tensor/arena.h"
#include "tensor/tensor.h"

namespace tabrep {
namespace {

uint64_t PoolHits() {
  return obs::Registry::Get().counter("tabrep.mem.pool.hit").value();
}
uint64_t PoolMisses() {
  return obs::Registry::Get().counter("tabrep.mem.pool.miss").value();
}

TEST(ArenaTest, AllocationsAre64ByteAligned) {
  mem::ScratchScope scope;
  for (std::size_t bytes : {1u, 7u, 64u, 100u, 4096u}) {
    void* p = mem::Arena::ThreadLocal().Alloc(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % AlignedBuffer::kAlignment, 0u)
        << bytes << " bytes";
    // The storage must be writable end to end.
    std::memset(p, 0xAB, bytes);
  }
}

TEST(ArenaTest, ScratchScopeRewindsToTheSameBytes) {
  // Warm the arena so both scopes below run in the steady state.
  { mem::ScratchScope warm;  (void)mem::ArenaFloats(1 << 12); }
  float* first = nullptr;
  {
    mem::ScratchScope scope;
    first = mem::ArenaFloats(1 << 12);
    first[0] = 1.0f;
  }
  float* second = nullptr;
  {
    mem::ScratchScope scope;
    second = mem::ArenaFloats(1 << 12);
  }
  // Same watermark on entry -> the exact same slab bytes come back.
  EXPECT_EQ(first, second);
}

TEST(ArenaTest, NestedScopesRewindIndependently) {
  mem::ScratchScope outer;
  float* a = mem::ArenaFloats(128);
  float* inner_ptr = nullptr;
  {
    mem::ScratchScope inner;
    inner_ptr = mem::ArenaFloats(256);
    EXPECT_NE(inner_ptr, a);
  }
  // The inner scope rewound past its own allocation only.
  float* b = mem::ArenaFloats(256);
  EXPECT_EQ(b, inner_ptr);
  a[0] = 2.0f;  // outer allocation still live and writable
}

TEST(ArenaTest, GrowsSlabsForLargeRequests) {
  mem::Arena& arena = mem::Arena::ThreadLocal();
  const std::size_t before = arena.reserved_bytes();
  mem::ScratchScope scope;
  const std::size_t big = 3u << 20;  // larger than the 1 MiB min slab
  float* p = arena.AllocSpan<float>(big / sizeof(float));
  ASSERT_NE(p, nullptr);
  p[0] = 1.0f;
  p[big / sizeof(float) - 1] = 2.0f;
  EXPECT_GE(arena.reserved_bytes(), before);
  EXPECT_GE(arena.reserved_bytes(), big);
}

TEST(ArenaTest, ArenaBytesCounterTracksRequests) {
  obs::Counter& bytes = obs::Registry::Get().counter("tabrep.mem.arena.bytes");
  const uint64_t before = bytes.value();
  mem::ScratchScope scope;
  (void)mem::ArenaFloats(1000);
  EXPECT_GE(bytes.value() - before, 1000u * sizeof(float));
}

TEST(TensorPoolTest, AcquireReturnsExactSize) {
  for (std::size_t n : {1u, 17u, 64u, 1000u}) {
    std::shared_ptr<AlignedBuffer> buf = mem::TensorPool::Acquire(n);
    ASSERT_NE(buf, nullptr);
    EXPECT_EQ(buf->size(), n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buf->data()) %
                  AlignedBuffer::kAlignment,
              0u);
  }
}

TEST(TensorPoolTest, RecyclesReleasedBuffers) {
  if (!mem::TensorPool::Enabled()) GTEST_SKIP() << "pool disabled via env";
  mem::TensorPool::Clear();
  Tensor t({4, 5});
  const float* storage = t.data();
  t = Tensor();  // release: the buffer goes back to the thread cache
  const uint64_t hits_before = PoolHits();
  Tensor u({4, 5});
  EXPECT_EQ(u.data(), storage);  // the very same buffer came back
  EXPECT_EQ(PoolHits(), hits_before + 1);
}

TEST(TensorPoolTest, RecycledTensorsAreZeroFilled) {
  if (!mem::TensorPool::Enabled()) GTEST_SKIP() << "pool disabled via env";
  mem::TensorPool::Clear();
  Tensor t({8});
  for (int64_t i = 0; i < t.numel(); ++i) t.data()[i] = 123.0f;
  t = Tensor();
  Tensor u({8});  // recycled storage, but Tensor(shape) means zeros
  for (int64_t i = 0; i < u.numel(); ++i) EXPECT_EQ(u[i], 0.0f);
}

TEST(TensorPoolTest, DifferentSizeMisses) {
  if (!mem::TensorPool::Enabled()) GTEST_SKIP() << "pool disabled via env";
  mem::TensorPool::Clear();
  { Tensor t({17}); }  // released into the 17-float bucket
  const uint64_t misses_before = PoolMisses();
  Tensor u({16});  // no 16-float buffer cached: fresh allocation
  EXPECT_EQ(PoolMisses(), misses_before + 1);
}

TEST(TensorPoolTest, ClearDropsCachedBuffers) {
  if (!mem::TensorPool::Enabled()) GTEST_SKIP() << "pool disabled via env";
  { Tensor t({32, 32}); }
  EXPECT_GT(mem::TensorPool::CachedFloats(), 0u);
  mem::TensorPool::Clear();
  EXPECT_EQ(mem::TensorPool::CachedFloats(), 0u);
}

TEST(TensorPoolTest, DefaultTensorsShareOneEmptyBuffer) {
  const long before = mem::TensorPool::Empty().use_count();
  Tensor a;
  Tensor b;
  // Both defaults alias the shared empty buffer instead of allocating.
  EXPECT_EQ(mem::TensorPool::Empty().use_count(), before + 2);
  EXPECT_EQ(a.numel(), 0);
  EXPECT_EQ(b.numel(), 0);
}

TEST(TensorPoolTest, SteadyStateLoopStopsMissing) {
  if (!mem::TensorPool::Enabled()) GTEST_SKIP() << "pool disabled via env";
  mem::TensorPool::Clear();
  // Warm up: the first iteration faults buffers in.
  { Tensor a({16, 16}); Tensor b = a.Clone(); }
  const uint64_t misses_before = PoolMisses();
  const uint64_t hits_before = PoolHits();
  for (int i = 0; i < 50; ++i) {
    Tensor a({16, 16});
    Tensor b = a.Clone();
  }
  EXPECT_EQ(PoolMisses(), misses_before);  // no fresh heap allocations
  EXPECT_GE(PoolHits(), hits_before + 100);
}

}  // namespace
}  // namespace tabrep
