#include <gtest/gtest.h>

#include "serialize/vocab_builder.h"
#include "table/synth.h"
#include "tasks/column_annotation.h"
#include "tasks/fact_verification.h"
#include "tasks/imputation.h"
#include "tasks/qa.h"
#include "tasks/retrieval.h"

namespace tabrep {
namespace {

/// Shared fixture: small corpus + tokenizer + serializer + a helper to
/// build tiny models. Task training tests use few steps; they assert
/// learnability (better than chance), not paper-grade accuracy.
class TasksFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 30;
    opts.max_rows = 6;
    opts.numeric_table_fraction = 0.15;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 1200;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    SerializerOptions sopts;
    sopts.max_tokens = 72;
    serializer_ = new TableSerializer(tokenizer_, sopts);
  }
  static void TearDownTestSuite() {
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static std::unique_ptr<TableEncoderModel> MakeModel(ModelFamily family) {
    ModelConfig config;
    config.family = family;
    config.vocab_size = tokenizer_->vocab().size();
    config.entity_vocab_size = corpus_->entities.size();
    config.transformer.dim = 32;
    config.transformer.num_layers = 1;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 64;
    config.transformer.dropout = 0.0f;
    config.max_position = 128;
    return std::make_unique<TableEncoderModel>(config);
  }

  static FineTuneConfig QuickConfig() {
    FineTuneConfig config;
    config.steps = 60;
    config.batch_size = 2;
    config.lr = 2e-3f;
    return config;
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
};

TableCorpus* TasksFixture::corpus_ = nullptr;
WordPieceTokenizer* TasksFixture::tokenizer_ = nullptr;
TableSerializer* TasksFixture::serializer_ = nullptr;

TEST_F(TasksFixture, ImputationCollectsExamples) {
  auto model = MakeModel(ModelFamily::kTapas);
  ImputationTask task(model.get(), serializer_, QuickConfig(), *corpus_);
  EXPECT_GT(task.value_vocab_size(), 10);
  auto examples = task.CollectExamples(*corpus_, true);
  EXPECT_GT(examples.size(), 50u);
  for (const auto& ex : examples) {
    EXPECT_GE(ex.value_id, 0);
    EXPECT_LT(ex.value_id, task.value_vocab_size());
  }
}

TEST_F(TasksFixture, ImputationLearnsAboveChance) {
  auto model = MakeModel(ModelFamily::kTapas);
  FineTuneConfig config = QuickConfig();
  config.steps = 100;
  ImputationTask task(model.get(), serializer_, config, *corpus_);
  task.Train(*corpus_);
  ClassificationReport r = task.Evaluate(*corpus_, 60);
  ASSERT_GT(r.total, 0);
  const double chance = 1.0 / task.value_vocab_size();
  EXPECT_GT(r.accuracy, 5 * chance)
      << "accuracy " << r.accuracy << " chance " << chance;
}

TEST_F(TasksFixture, ImputationTopKContainsArgmaxAndGrowsHitRate) {
  auto model = MakeModel(ModelFamily::kTapas);
  FineTuneConfig config = QuickConfig();
  config.steps = 40;
  ImputationTask task(model.get(), serializer_, config, *corpus_);
  task.Train(*corpus_);
  const Table& t = corpus_->tables[0];
  // Find a categorical cell.
  for (int64_t c = 0; c < t.num_columns(); ++c) {
    if (t.column(c).type != ColumnType::kText &&
        t.column(c).type != ColumnType::kEntity) {
      continue;
    }
    auto top3 = task.PredictCellTopK(t, 0, static_cast<int32_t>(c), 3);
    ASSERT_EQ(top3.size(), 3u);
    EXPECT_EQ(top3[0], task.PredictCell(t, 0, static_cast<int32_t>(c)));
    break;
  }
  // Hit@k is monotone in k.
  const double h1 = task.EvaluateHitAtK(*corpus_, 1, 40);
  const double h5 = task.EvaluateHitAtK(*corpus_, 5, 40);
  const double h20 = task.EvaluateHitAtK(*corpus_, 20, 40);
  EXPECT_LE(h1, h5);
  EXPECT_LE(h5, h20);
}

TEST_F(TasksFixture, ImputationPredictCellReturnsKnownValue) {
  auto model = MakeModel(ModelFamily::kVanilla);
  ImputationTask task(model.get(), serializer_, QuickConfig(), *corpus_);
  Table t = MakeAwardsDemoTable();
  std::string predicted = task.PredictCell(t, 1, 1);  // missing Recipient
  // Untrained model: any in-vocabulary value (or empty on failure) is
  // structurally fine.
  if (!predicted.empty()) {
    bool found = false;
    for (int32_t i = 0; i < task.value_vocab_size(); ++i) {
      if (task.value_name(i) == predicted) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(TasksFixture, QaExamplesWellFormed) {
  Rng rng(1);
  auto examples = GenerateQaExamples(*corpus_, 2, rng);
  ASSERT_GT(examples.size(), 10u);
  for (const auto& ex : examples) {
    const Table& t = corpus_->tables[static_cast<size_t>(ex.table_index)];
    EXPECT_GE(ex.answer_col, 1);
    EXPECT_LT(ex.answer_col, t.num_columns());
    EXPECT_LT(ex.answer_row, t.num_rows());
    EXPECT_NE(ex.question.find("what is the"), std::string::npos);
    EXPECT_FALSE(t.cell(ex.answer_row, ex.answer_col).is_null());
  }
}

TEST_F(TasksFixture, QaLearnsAboveChance) {
  auto model = MakeModel(ModelFamily::kTapas);
  Rng rng(2);
  auto examples = GenerateQaExamples(*corpus_, 2, rng);
  FineTuneConfig config = QuickConfig();
  config.steps = 80;
  QaTask task(model.get(), serializer_, config);
  task.Train(*corpus_, examples);
  double acc = task.Evaluate(*corpus_, examples);
  // Chance = 1 / avg cells per table (> 12 cells typically).
  EXPECT_GT(acc, 0.15) << "accuracy " << acc;
}

TEST_F(TasksFixture, QaAnswerReturnsCellText) {
  auto model = MakeModel(ModelFamily::kVanilla);
  QaTask task(model.get(), serializer_, QuickConfig());
  Table t = MakeCountryDemoTable();
  std::string answer = task.Answer(t, "what is the capital of france");
  // Untrained: answer is some cell's text.
  bool found = answer.empty();
  for (int64_t r = 0; r < t.num_rows() && !found; ++r) {
    for (int64_t c = 0; c < t.num_columns(); ++c) {
      if (t.cell(r, c).ToText() == answer) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TasksFixture, FactExamplesBalanced) {
  Rng rng(3);
  auto examples = GenerateFactExamples(*corpus_, 4, rng);
  ASSERT_GT(examples.size(), 20u);
  int64_t pos = 0;
  for (const auto& ex : examples) pos += ex.label;
  const double frac = static_cast<double>(pos) / examples.size();
  EXPECT_GT(frac, 0.3);
  EXPECT_LT(frac, 0.7);
}

TEST_F(TasksFixture, AggregateFactExamplesAreExecutorConsistent) {
  Rng rng(33);
  auto examples = GenerateAggregateFactExamples(*corpus_, 4, rng);
  ASSERT_GT(examples.size(), 15u);
  int64_t pos = 0;
  for (const auto& ex : examples) {
    pos += ex.label;
    // Claims read like statements, not questions.
    EXPECT_EQ(ex.claim.find("what is"), std::string::npos) << ex.claim;
    EXPECT_NE(ex.claim.find(" is "), std::string::npos) << ex.claim;
  }
  const double frac = static_cast<double>(pos) / examples.size();
  EXPECT_GT(frac, 0.3);
  EXPECT_LT(frac, 0.7);
}

TEST_F(TasksFixture, FactVerificationLearnsAboveChance) {
  auto model = MakeModel(ModelFamily::kTapas);
  Rng rng(4);
  auto examples = GenerateFactExamples(*corpus_, 3, rng);
  FineTuneConfig config = QuickConfig();
  config.steps = 80;
  FactVerificationTask task(model.get(), serializer_, config);
  task.Train(*corpus_, examples);
  ClassificationReport r = task.Evaluate(*corpus_, examples);
  EXPECT_GT(r.accuracy, 0.58) << "accuracy " << r.accuracy;
}

TEST_F(TasksFixture, FactVerifyReturnsBinary) {
  auto model = MakeModel(ModelFamily::kVanilla);
  FactVerificationTask task(model.get(), serializer_, QuickConfig());
  int32_t v = task.Verify(MakeCountryDemoTable(),
                          "the capital of france is paris");
  EXPECT_TRUE(v == 0 || v == 1);
}

TEST_F(TasksFixture, RetrievalExamplesReferenceTables) {
  Rng rng(5);
  auto examples = GenerateRetrievalExamples(*corpus_, rng);
  ASSERT_GT(examples.size(), 10u);
  for (const auto& ex : examples) {
    EXPECT_FALSE(ex.query.empty());
    EXPECT_GE(ex.relevant_table, 0);
    EXPECT_LT(ex.relevant_table, corpus_->size());
  }
}

TEST_F(TasksFixture, RetrievalTrainingImprovesRanking) {
  auto model = MakeModel(ModelFamily::kVanilla);
  Rng rng(6);
  auto examples = GenerateRetrievalExamples(*corpus_, rng);
  FineTuneConfig config = QuickConfig();
  config.steps = 40;
  config.batch_size = 4;
  RetrievalTask task(model.get(), serializer_, config);
  RankingReport before = task.Evaluate(*corpus_, examples);
  task.Train(*corpus_, examples);
  RankingReport after = task.Evaluate(*corpus_, examples);
  EXPECT_GT(after.mrr, before.mrr) << "before " << before.mrr << " after "
                                   << after.mrr;
  // Random MRR over ~30 candidates is ~0.13; trained should beat it.
  EXPECT_GT(after.mrr, 0.2);
}

TEST_F(TasksFixture, RetrievalTopKShape) {
  auto model = MakeModel(ModelFamily::kVanilla);
  RetrievalTask task(model.get(), serializer_, QuickConfig());
  auto top = task.TopK("countries of the world", *corpus_, 5);
  EXPECT_EQ(top.size(), 5u);
}

TEST_F(TasksFixture, ColumnAnnotationCollectsExamples) {
  auto model = MakeModel(ModelFamily::kTapas);
  ColumnAnnotationTask task(model.get(), serializer_, QuickConfig(), *corpus_);
  EXPECT_GT(task.num_labels(), 5);
  auto examples = task.CollectExamples(*corpus_);
  EXPECT_GT(examples.size(), 30u);
}

TEST_F(TasksFixture, ColumnAnnotationLearnsAboveChance) {
  auto model = MakeModel(ModelFamily::kTapas);
  FineTuneConfig config = QuickConfig();
  config.steps = 80;
  ColumnAnnotationTask task(model.get(), serializer_, config, *corpus_);
  task.Train(*corpus_);
  ClassificationReport r = task.Evaluate(*corpus_, 60);
  ASSERT_GT(r.total, 0);
  const double chance = 1.0 / task.num_labels();
  EXPECT_GT(r.accuracy, 3 * chance)
      << "accuracy " << r.accuracy << " chance " << chance;
}

TEST_F(TasksFixture, ColumnAnnotationPredictsFromContent) {
  auto model = MakeModel(ModelFamily::kVanilla);
  ColumnAnnotationTask task(model.get(), serializer_, QuickConfig(), *corpus_);
  std::string label = task.PredictColumn(MakeCountryDemoTable(), 0);
  if (!label.empty()) {
    bool known = false;
    for (int32_t i = 0; i < task.num_labels(); ++i) {
      if (task.label_name(i) == label) known = true;
    }
    EXPECT_TRUE(known);
  }
}

TEST_F(TasksFixture, FrozenEncoderOnlyTrainsHead) {
  auto model = MakeModel(ModelFamily::kVanilla);
  FineTuneConfig config = QuickConfig();
  config.steps = 5;
  config.freeze_encoder = true;
  // Snapshot encoder weights.
  TensorMap before = model->ExportStateDict();
  ImputationTask task(model.get(), serializer_, config, *corpus_);
  task.Train(*corpus_);
  TensorMap after = model->ExportStateDict();
  for (const auto& [name, tensor] : before) {
    EXPECT_TRUE(tensor.AllClose(after.at(name)))
        << name << " changed despite frozen encoder";
  }
}

}  // namespace
}  // namespace tabrep
