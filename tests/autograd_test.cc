#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace tabrep {
namespace {

using ag::Variable;

/// Finite-difference gradient check: builds `fn` (a scalar-valued graph
/// over `x`), runs Backward, and compares x.grad() against central
/// differences. fn must be deterministic.
void CheckGradient(Tensor x_init,
                   const std::function<Variable(const Variable&)>& fn,
                   float eps = 1e-3f, float tol = 2e-2f) {
  Variable x = Variable::Param(x_init.Clone());
  Variable y = fn(x);
  ASSERT_EQ(y.numel(), 1) << "gradient check needs scalar output";
  ag::Backward(y);
  const Tensor analytic = x.grad().Clone();

  for (int64_t i = 0; i < x_init.numel(); ++i) {
    Tensor plus = x_init.Clone();
    plus[i] += eps;
    Tensor minus = x_init.Clone();
    minus[i] -= eps;
    const float f_plus = fn(Variable::Param(plus)).value()[0];
    const float f_minus = fn(Variable::Param(minus)).value()[0];
    const float numeric = (f_plus - f_minus) / (2.0f * eps);
    EXPECT_NEAR(analytic[i], numeric, tol)
        << "element " << i << " analytic=" << analytic[i]
        << " numeric=" << numeric;
  }
}

TEST(AutogradTest, BackwardThroughAdd) {
  Rng rng(1);
  CheckGradient(Tensor::Randn({6}, rng), [](const Variable& x) {
    Variable c = Variable::Constant(Tensor::Of({1, 2, 3, 4, 5, 6}));
    return ag::SumAll(ag::Add(x, c));
  });
}

TEST(AutogradTest, BackwardThroughMul) {
  Rng rng(2);
  CheckGradient(Tensor::Randn({5}, rng), [](const Variable& x) {
    Variable c = Variable::Constant(Tensor::Of({2, -1, 0.5, 3, -2}));
    return ag::SumAll(ag::Mul(x, c));
  });
}

TEST(AutogradTest, BackwardThroughSquare) {
  Rng rng(3);
  CheckGradient(Tensor::Randn({4}, rng), [](const Variable& x) {
    return ag::SumAll(ag::Mul(x, x));
  });
}

TEST(AutogradTest, BackwardThroughSubAndScalars) {
  Rng rng(4);
  CheckGradient(Tensor::Randn({4}, rng), [](const Variable& x) {
    Variable c = Variable::Constant(Tensor::Of({1, 1, 1, 1}));
    return ag::SumAll(ag::MulScalar(ag::Sub(ag::AddScalar(x, 3.0f), c), 2.0f));
  });
}

TEST(AutogradTest, BackwardThroughMatMul) {
  Rng rng(5);
  Tensor b_init = Tensor::Randn({3, 2}, rng);
  CheckGradient(Tensor::Randn({2, 3}, rng), [b_init](const Variable& x) {
    Variable b = Variable::Constant(b_init);
    return ag::SumAll(ag::MatMul(x, b));
  });
}

TEST(AutogradTest, BackwardThroughMatMulRhs) {
  Rng rng(6);
  Tensor a_init = Tensor::Randn({2, 3}, rng);
  CheckGradient(Tensor::Randn({3, 2}, rng), [a_init](const Variable& x) {
    Variable a = Variable::Constant(a_init);
    return ag::SumAll(ag::Mul(ag::MatMul(a, x), ag::MatMul(a, x)));
  });
}

TEST(AutogradTest, BackwardThroughMatMulTransposedB) {
  Rng rng(7);
  Tensor b_init = Tensor::Randn({4, 3}, rng);
  CheckGradient(Tensor::Randn({2, 3}, rng), [b_init](const Variable& x) {
    Variable b = Variable::Constant(b_init);
    Variable y = ag::MatMulTransposedB(x, b);
    return ag::SumAll(ag::Mul(y, y));
  });
}

TEST(AutogradTest, BackwardThroughTranspose) {
  Rng rng(8);
  Tensor c_init = Tensor::Randn({3, 2}, rng);
  CheckGradient(Tensor::Randn({2, 3}, rng), [c_init](const Variable& x) {
    Variable c = Variable::Constant(c_init);
    return ag::SumAll(ag::Mul(ag::Transpose(x), c));
  });
}

TEST(AutogradTest, BackwardThroughReshape) {
  Rng rng(9);
  CheckGradient(Tensor::Randn({6}, rng), [](const Variable& x) {
    Variable y = ag::Reshape(x, {2, 3});
    return ag::SumAll(ag::Mul(y, y));
  });
}

TEST(AutogradTest, BackwardThroughActivations) {
  Rng rng(10);
  for (auto fn : {&ag::Tanh, &ag::Gelu, &ag::Sigmoid}) {
    CheckGradient(Tensor::Randn({5}, rng), [fn](const Variable& x) {
      return ag::SumAll(fn(x));
    });
  }
}

TEST(AutogradTest, BackwardThroughRelu) {
  // Keep inputs away from the kink at 0.
  CheckGradient(Tensor::Of({-2, -1, 1, 2}), [](const Variable& x) {
    return ag::SumAll(ag::Relu(x));
  });
}

TEST(AutogradTest, BackwardThroughSoftmax) {
  Rng rng(11);
  Tensor w_init = Tensor::Randn({2, 4}, rng);
  CheckGradient(Tensor::Randn({2, 4}, rng), [w_init](const Variable& x) {
    Variable w = Variable::Constant(w_init);
    return ag::SumAll(ag::Mul(ag::Softmax(x), w));
  });
}

TEST(AutogradTest, BackwardThroughLayerNorm) {
  Rng rng(12);
  Tensor gamma_init = Tensor::Randn({6}, rng, 0.5f);
  Tensor beta_init = Tensor::Randn({6}, rng, 0.5f);
  Tensor w_init = Tensor::Randn({2, 6}, rng);
  CheckGradient(
      Tensor::Randn({2, 6}, rng),
      [&](const Variable& x) {
        Variable gamma = Variable::Constant(gamma_init);
        Variable beta = Variable::Constant(beta_init);
        Variable w = Variable::Constant(w_init);
        return ag::SumAll(ag::Mul(ag::LayerNorm(x, gamma, beta), w));
      },
      1e-2f, 5e-2f);
}

TEST(AutogradTest, LayerNormParamGradients) {
  Rng rng(13);
  Tensor x_init = Tensor::Randn({3, 4}, rng);
  // Check gamma gradient.
  CheckGradient(Tensor::Randn({4}, rng), [&](const Variable& gamma) {
    Variable x = Variable::Constant(x_init);
    Variable beta = Variable::Constant(Tensor::Zeros({4}));
    Variable y = ag::LayerNorm(x, gamma, beta);
    return ag::SumAll(ag::Mul(y, y));
  });
  // Check beta gradient.
  CheckGradient(Tensor::Randn({4}, rng), [&](const Variable& beta) {
    Variable x = Variable::Constant(x_init);
    Variable gamma = Variable::Constant(Tensor::Ones({4}));
    Variable y = ag::LayerNorm(x, gamma, beta);
    return ag::SumAll(ag::Mul(y, y));
  });
}

TEST(AutogradTest, BackwardThroughAddRowBroadcast) {
  Rng rng(14);
  Tensor x_init = Tensor::Randn({3, 4}, rng);
  CheckGradient(Tensor::Randn({4}, rng), [&](const Variable& b) {
    Variable x = Variable::Constant(x_init);
    Variable y = ag::AddRowBroadcast(x, b);
    return ag::SumAll(ag::Mul(y, y));
  });
}

TEST(AutogradTest, BackwardThroughL2NormalizeRows) {
  Rng rng(30);
  Tensor w_init = Tensor::Randn({3, 4}, rng);
  CheckGradient(Tensor::Randn({3, 4}, rng), [w_init](const Variable& x) {
    Variable w = Variable::Constant(w_init);
    return ag::SumAll(ag::Mul(ag::L2NormalizeRows(x), w));
  });
}

TEST(AutogradTest, L2NormalizeRowsProducesUnitRows) {
  Rng rng(31);
  Variable x = Variable::Param(Tensor::Randn({5, 8}, rng, 3.0f));
  Variable y = ag::L2NormalizeRows(x);
  for (int64_t r = 0; r < 5; ++r) {
    double norm = 0;
    for (int64_t c = 0; c < 8; ++c) {
      norm += y.value().at(r, c) * y.value().at(r, c);
    }
    EXPECT_NEAR(norm, 1.0, 1e-5);
  }
}

TEST(AutogradTest, BackwardThroughEmbeddingLookup) {
  Rng rng(15);
  CheckGradient(Tensor::Randn({4, 3}, rng), [](const Variable& table) {
    Variable y = ag::EmbeddingLookup(table, {1, 3, 1});
    return ag::SumAll(ag::Mul(y, y));
  });
}

TEST(AutogradTest, BackwardThroughSliceConcat) {
  Rng rng(16);
  CheckGradient(Tensor::Randn({4, 2}, rng), [](const Variable& x) {
    Variable top = ag::SliceRows(x, 0, 2);
    Variable bottom = ag::SliceRows(x, 2, 4);
    Variable y = ag::ConcatRows({bottom, top});
    return ag::SumAll(ag::Mul(y, y));
  });
}

TEST(AutogradTest, BackwardThroughCrossEntropy) {
  Rng rng(17);
  CheckGradient(Tensor::Randn({3, 5}, rng), [](const Variable& logits) {
    return ag::CrossEntropy(logits, {1, 4, 2});
  });
}

TEST(AutogradTest, CrossEntropyWithIgnoredRows) {
  Rng rng(18);
  CheckGradient(Tensor::Randn({3, 4}, rng), [](const Variable& logits) {
    return ag::CrossEntropy(logits, {2, -100, 0});
  });
}

TEST(AutogradTest, BackwardThroughMeanOps) {
  Rng rng(19);
  CheckGradient(Tensor::Randn({3, 4}, rng), [](const Variable& x) {
    return ag::MeanAll(ag::Mul(x, x));
  });
  CheckGradient(Tensor::Randn({3, 4}, rng), [](const Variable& x) {
    Variable m = ag::MeanRows(ag::Mul(x, x));
    return ag::SumAll(m);
  });
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // y = x*x + x*x through two separate paths: grad = 4x.
  Tensor init = Tensor::Of({1, 2, 3});
  Variable x = Variable::Param(init.Clone());
  Variable a = ag::Mul(x, x);
  Variable b = ag::Mul(x, x);
  Variable y = ag::SumAll(ag::Add(a, b));
  ag::Backward(y);
  EXPECT_TRUE(x.grad().AllClose(Tensor::Of({4, 8, 12}), 1e-4f));
}

TEST(AutogradTest, ReusedNodeAccumulates) {
  // z = sum(x + x): grad = 2.
  Variable x = Variable::Param(Tensor::Of({1, 1}));
  Variable y = ag::Add(x, x);
  ag::Backward(ag::SumAll(y));
  EXPECT_TRUE(x.grad().AllClose(Tensor::Of({2, 2})));
}

TEST(AutogradTest, ConstantsGetNoGrad) {
  Variable c = Variable::Constant(Tensor::Of({1, 2}));
  Variable x = Variable::Param(Tensor::Of({3, 4}));
  Variable y = ag::SumAll(ag::Mul(x, c));
  EXPECT_TRUE(y.requires_grad());
  ag::Backward(y);
  EXPECT_TRUE(x.grad().AllClose(Tensor::Of({1, 2})));
  // Constant's grad buffer stays zero.
  EXPECT_TRUE(c.grad().AllClose(Tensor::Zeros({2})));
}

TEST(AutogradTest, PureConstantGraphNeedsNoTape) {
  Variable a = Variable::Constant(Tensor::Of({1, 2}));
  Variable b = Variable::Constant(Tensor::Of({3, 4}));
  Variable y = ag::Add(a, b);
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(y.value().AllClose(Tensor::Of({4, 6})));
}

TEST(AutogradTest, ZeroGradResets) {
  Variable x = Variable::Param(Tensor::Of({2}));
  ag::Backward(ag::SumAll(ag::Mul(x, x)));
  EXPECT_NEAR(x.grad()[0], 4.0f, 1e-5f);
  x.ZeroGrad();
  EXPECT_EQ(x.grad()[0], 0.0f);
  ag::Backward(ag::SumAll(ag::Mul(x, x)));
  EXPECT_NEAR(x.grad()[0], 4.0f, 1e-5f);
}

TEST(AutogradTest, DropoutScalesAndMasks) {
  Rng rng(20);
  Variable x = Variable::Param(Tensor::Ones({1000}));
  Variable y = ag::Dropout(x, 0.5f, rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y.value()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y.value()[i], 2.0f);
    }
  }
  EXPECT_GT(zeros, 400);
  EXPECT_LT(zeros, 600);
  // Gradient flows only through kept elements.
  ag::Backward(ag::SumAll(y));
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(x.grad()[i], y.value()[i] == 0.0f ? 0.0f : 2.0f);
  }
}

TEST(AutogradTest, DropoutZeroPIsIdentity) {
  Rng rng(21);
  Variable x = Variable::Param(Tensor::Of({1, 2, 3}));
  Variable y = ag::Dropout(x, 0.0f, rng);
  EXPECT_TRUE(y.value().AllClose(x.value()));
}

}  // namespace
}  // namespace tabrep
