#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace tabrep {
namespace {

TEST(ClassificationTest, PerfectPredictions) {
  auto r = ComputeClassification({0, 1, 2, 1}, {0, 1, 2, 1});
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(r.micro.f1, 1.0);
  EXPECT_DOUBLE_EQ(r.macro.f1, 1.0);
  EXPECT_EQ(r.total, 4);
}

TEST(ClassificationTest, AllWrong) {
  auto r = ComputeClassification({1, 0}, {0, 1});
  EXPECT_DOUBLE_EQ(r.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(r.macro.f1, 0.0);
}

TEST(ClassificationTest, KnownMixedCase) {
  // gold:  0 0 1 1 1 2 ; pred: 0 1 1 1 0 2
  auto r = ComputeClassification({0, 1, 1, 1, 0, 2}, {0, 0, 1, 1, 1, 2});
  EXPECT_NEAR(r.accuracy, 4.0 / 6.0, 1e-9);
  // class 0: tp=1 fp=1 fn=1 -> p=0.5 r=0.5 f1=0.5
  EXPECT_NEAR(r.per_class.at(0).f1, 0.5, 1e-9);
  // class 1: tp=2 fp=1 fn=1 -> p=2/3 r=2/3 f1=2/3
  EXPECT_NEAR(r.per_class.at(1).f1, 2.0 / 3.0, 1e-9);
  // class 2: perfect.
  EXPECT_NEAR(r.per_class.at(2).f1, 1.0, 1e-9);
  EXPECT_NEAR(r.macro.f1, (0.5 + 2.0 / 3.0 + 1.0) / 3.0, 1e-9);
  // Single-label micro-F1 == accuracy.
  EXPECT_NEAR(r.micro.f1, r.accuracy, 1e-9);
}

TEST(ClassificationTest, IgnoreLabelSkips) {
  auto r = ComputeClassification({0, 5, 1}, {0, -100, 1});
  EXPECT_EQ(r.total, 2);
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
}

TEST(ClassificationTest, EmptyInput) {
  auto r = ComputeClassification({}, {});
  EXPECT_EQ(r.total, 0);
  EXPECT_DOUBLE_EQ(r.accuracy, 0.0);
}

TEST(ClassificationTest, SupportCounts) {
  auto r = ComputeClassification({0, 0, 0}, {0, 0, 1});
  EXPECT_EQ(r.per_class.at(0).support, 2);
  EXPECT_EQ(r.per_class.at(1).support, 1);
}

TEST(RankingTest, PerfectRanks) {
  auto r = ComputeRanking({1, 1, 1});
  EXPECT_DOUBLE_EQ(r.mrr, 1.0);
  EXPECT_DOUBLE_EQ(r.hit_at_1, 1.0);
  EXPECT_DOUBLE_EQ(r.ndcg_at_10, 1.0);
}

TEST(RankingTest, KnownMixedRanks) {
  auto r = ComputeRanking({1, 2, 4, 0});
  EXPECT_NEAR(r.mrr, (1.0 + 0.5 + 0.25 + 0.0) / 4.0, 1e-9);
  EXPECT_NEAR(r.hit_at_1, 0.25, 1e-9);
  EXPECT_NEAR(r.hit_at_5, 0.75, 1e-9);
  EXPECT_NEAR(r.hit_at_10, 0.75, 1e-9);
  EXPECT_EQ(r.num_queries, 4);
}

TEST(RankingTest, MissingRelevantGivesZero) {
  auto r = ComputeRanking({0, 0});
  EXPECT_DOUBLE_EQ(r.mrr, 0.0);
  EXPECT_DOUBLE_EQ(r.hit_at_10, 0.0);
}

TEST(RankingTest, EmptyQueries) {
  auto r = ComputeRanking({});
  EXPECT_EQ(r.num_queries, 0);
  EXPECT_DOUBLE_EQ(r.mrr, 0.0);
}

TEST(RankingTest, ReciprocalRank) {
  EXPECT_DOUBLE_EQ(ReciprocalRank(1), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(4), 0.25);
  EXPECT_DOUBLE_EQ(ReciprocalRank(0), 0.0);
}

TEST(F1Test, FromCounts) {
  EXPECT_DOUBLE_EQ(F1FromCounts(10, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(F1FromCounts(0, 5, 5), 0.0);
  EXPECT_NEAR(F1FromCounts(5, 5, 5), 0.5, 1e-9);
}

TEST(RenderTableTest, AlignsColumns) {
  std::string out = RenderTextTable({"model", "f1"},
                                    {{"vanilla", "0.50"}, {"turl", "0.80"}});
  EXPECT_NE(out.find("| model   | f1   |"), std::string::npos);
  EXPECT_NE(out.find("| turl    | 0.80 |"), std::string::npos);
  // Separator line present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(RenderTableTest, HandlesShortRows) {
  std::string out = RenderTextTable({"a", "b"}, {{"only"}});
  EXPECT_NE(out.find("only"), std::string::npos);
}

}  // namespace
}  // namespace tabrep
