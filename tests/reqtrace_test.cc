#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "models/table_encoder.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "serialize/vocab_builder.h"
#include "serve/serve.h"
#include "table/synth.h"

namespace tabrep {
namespace {

using obs::RequestContext;
using Clock = RequestContext::Clock;
using std::chrono::microseconds;

/// A fully-stamped context with exact microsecond gaps between
/// consecutive stamps, for pinning ComputeStages arithmetic.
RequestContext MakeStampedContext() {
  RequestContext ctx;
  ctx.request_id = 7;
  ctx.conn_id = 3;
  ctx.seq = 11;
  const Clock::time_point t0 = Clock::now();
  ctx.received = t0;
  ctx.admitted = t0 + microseconds(10);
  ctx.decoded = t0 + microseconds(30);
  ctx.dequeued = t0 + microseconds(130);
  ctx.encode_start = t0 + microseconds(180);
  ctx.encode_end = t0 + microseconds(680);
  ctx.serialized = t0 + microseconds(700);
  ctx.written = t0 + microseconds(705);
  ctx.batch_size = 4;
  ctx.submitted = true;
  return ctx;
}

// --- ComputeStages arithmetic. ------------------------------------------

TEST(ComputeStagesTest, ConsecutiveDeltasInMicroseconds) {
  const obs::StageBreakdown b = obs::ComputeStages(MakeStampedContext());
  EXPECT_DOUBLE_EQ(b.admission_us, 10.0);
  EXPECT_DOUBLE_EQ(b.decode_us, 20.0);
  EXPECT_DOUBLE_EQ(b.queue_us, 100.0);
  EXPECT_DOUBLE_EQ(b.batch_us, 50.0);
  EXPECT_DOUBLE_EQ(b.inference_us, 500.0);
  EXPECT_DOUBLE_EQ(b.serialize_us, 20.0);
  EXPECT_DOUBLE_EQ(b.write_us, 5.0);
  EXPECT_DOUBLE_EQ(b.total_us, 705.0);
  // The stage sum IS the total when every stamp is present: no
  // unattributed gap (the >= 80% bench criterion measures exactly this).
  const double sum = b.admission_us + b.decode_us + b.queue_us + b.batch_us +
                     b.inference_us + b.serialize_us + b.write_us;
  EXPECT_DOUBLE_EQ(sum, b.total_us);
}

TEST(ComputeStagesTest, OutOfOrderStampsClampToZero) {
  // A coalesced request can attach to a Pending whose batch was already
  // dequeued: its queue-wait computes negative and must read as 0.
  RequestContext ctx = MakeStampedContext();
  ctx.dequeued = ctx.decoded - microseconds(40);
  const obs::StageBreakdown b = obs::ComputeStages(ctx);
  EXPECT_DOUBLE_EQ(b.queue_us, 0.0);
  EXPECT_GE(b.batch_us, 0.0);
}

TEST(ComputeStagesTest, UnstampedStagesReadZeroAndDoNotAdvanceChain) {
  // A shed never reaches the dispatcher or serialization: only
  // received/written are stamped. Everything in between is 0 and the
  // write stage spans the whole gap (the last stamped boundary chains
  // from `received`, not from an unstamped zero TimePoint).
  RequestContext ctx;
  const Clock::time_point t0 = Clock::now();
  ctx.received = t0;
  ctx.written = t0 + microseconds(42);
  const obs::StageBreakdown b = obs::ComputeStages(ctx);
  EXPECT_DOUBLE_EQ(b.admission_us, 0.0);
  EXPECT_DOUBLE_EQ(b.decode_us, 0.0);
  EXPECT_DOUBLE_EQ(b.queue_us, 0.0);
  EXPECT_DOUBLE_EQ(b.batch_us, 0.0);
  EXPECT_DOUBLE_EQ(b.inference_us, 0.0);
  EXPECT_DOUBLE_EQ(b.serialize_us, 0.0);
  EXPECT_DOUBLE_EQ(b.write_us, 42.0);
  EXPECT_DOUBLE_EQ(b.total_us, 42.0);
}

TEST(ComputeStagesTest, EmptyContextIsAllZero) {
  const obs::StageBreakdown b = obs::ComputeStages(RequestContext{});
  EXPECT_DOUBLE_EQ(b.total_us, 0.0);
  EXPECT_DOUBLE_EQ(b.write_us, 0.0);
}

// --- Access-log line schema. --------------------------------------------

TEST(AccessLogTest, FormatLineIsParsableJsonWithAllKeys) {
  RequestContext ctx = MakeStampedContext();
  ctx.cache_hit = true;
  ctx.status = StatusCode::kOverloaded;
  const std::string line = obs::AccessLog::FormatLine(ctx);
  Result<obs::JsonValue> doc = obs::JsonParse(line);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\nline: " << line;
  EXPECT_DOUBLE_EQ(doc->Find("request_id")->AsNumber(), 7.0);
  EXPECT_DOUBLE_EQ(doc->Find("conn")->AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(doc->Find("seq")->AsNumber(), 11.0);
  EXPECT_EQ(doc->Find("status")->AsString(), "Overloaded");
  EXPECT_TRUE(doc->Find("cache_hit")->AsBool());
  EXPECT_DOUBLE_EQ(doc->Find("batch_size")->AsNumber(), 4.0);
  EXPECT_DOUBLE_EQ(doc->Find("total_us")->AsNumber(), 705.0);
  const obs::JsonValue* stages = doc->Find("stages_us");
  ASSERT_NE(stages, nullptr);
  for (const char* key : {"admission", "decode", "queue", "batch",
                          "inference", "serialize", "write"}) {
    ASSERT_NE(stages->Find(key), nullptr) << key;
  }
  EXPECT_DOUBLE_EQ(stages->Find("inference")->AsNumber(), 500.0);
}

TEST(AccessLogTest, DefaultConstructedIsDisabledAndAppendIsANoOp) {
  obs::AccessLog log;
  EXPECT_FALSE(log.enabled());
  log.Append(MakeStampedContext());  // must not crash
}

// --- Registry JSON carries count and sum (the delta-mean contract). -----

TEST(RegistryJsonTest, HistogramEntriesCarryCountAndSum) {
  // statscope computes interval means as (sum2-sum1)/(count2-count1)
  // from consecutive kStats snapshots; this pins the fields it needs.
  obs::Histogram& h =
      obs::Registry::Get().histogram("tabrep.test.reqtrace.pin.us");
  h.Record(100.0);
  h.Record(300.0);
  Result<obs::JsonValue> doc = obs::JsonParse(obs::Registry::Get().ToJson());
  ASSERT_TRUE(doc.ok());
  const obs::JsonValue* entry =
      doc->Get({"histograms", "tabrep.test.reqtrace.pin.us"});
  ASSERT_NE(entry, nullptr);
  ASSERT_NE(entry->Find("count"), nullptr);
  ASSERT_NE(entry->Find("sum"), nullptr);
  EXPECT_DOUBLE_EQ(entry->Find("count")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(entry->Find("sum")->AsNumber(), 400.0);
}

// --- Traces through the real serving stack. -----------------------------

/// Corpus + tokenizer + model shared by the end-to-end trace tests
/// (vocab building is the slow part; same idiom as NetFixture).
class ReqTraceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 16;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 1200;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    SerializerOptions sopts;
    sopts.max_tokens = 96;
    serializer_ = new TableSerializer(tokenizer_, sopts);

    ModelConfig config;
    config.family = ModelFamily::kTapas;
    config.vocab_size = tokenizer_->vocab().size();
    config.entity_vocab_size = corpus_->entities.size();
    config.transformer.dim = 32;
    config.transformer.num_layers = 1;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 64;
    config.transformer.dropout = 0.0f;
    config.max_position = 128;
    model_ = new TableEncoderModel(config);
    model_->SetTraining(false);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    model_ = nullptr;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
  static TableEncoderModel* model_;
};

TableCorpus* ReqTraceFixture::corpus_ = nullptr;
WordPieceTokenizer* ReqTraceFixture::tokenizer_ = nullptr;
TableSerializer* ReqTraceFixture::serializer_ = nullptr;
TableEncoderModel* ReqTraceFixture::model_ = nullptr;

TEST_F(ReqTraceFixture, SubmitStampsTheDispatcherTripleMonotonically) {
  serve::BatchedEncoder encoder(model_, {});
  const TokenizedTable input = serializer_->Serialize(corpus_->tables[0]);

  RequestContext trace;
  trace.received = Clock::now();
  trace.decoded = trace.received;
  auto future = encoder.Submit(input, &trace);
  ASSERT_TRUE(future.get().ok());
  // future.get() is the synchronizing edge: the dispatcher's stamps are
  // visible here and in chain order.
  EXPECT_TRUE(trace.submitted);
  EXPECT_FALSE(trace.cache_hit);
  EXPECT_GE(trace.dequeued, trace.decoded);
  EXPECT_GE(trace.encode_start, trace.dequeued);
  EXPECT_GE(trace.encode_end, trace.encode_start);
  EXPECT_GE(trace.batch_size, 1);

  // Same table again: served from the encode cache; the fast path
  // stamps the dispatcher triple to the Submit call time so the
  // queue/batch/inference stages read ~zero.
  RequestContext hit;
  hit.received = Clock::now();
  hit.decoded = hit.received;
  auto future2 = encoder.Submit(input, &hit);
  ASSERT_TRUE(future2.get().ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.batch_size, 0);
  EXPECT_EQ(hit.dequeued, hit.encode_start);
  EXPECT_EQ(hit.encode_start, hit.encode_end);
}

TEST_F(ReqTraceFixture, BatchStageMatchesDispatchDelay) {
  // dispatch_delay_us holds every batch between dequeue and encode;
  // the batch stage must show it. sleep_for never wakes early, so the
  // lower bound is exact; the upper bound is generous for loaded CI.
  serve::BatchedEncoderOptions opts;
  opts.max_batch = 1;
  opts.max_wait_us = 0;
  opts.cache_capacity = 0;
  opts.dispatch_delay_us = 30000;  // 30ms
  serve::BatchedEncoder encoder(model_, opts);

  RequestContext trace;
  trace.received = Clock::now();
  trace.decoded = trace.received;
  auto future = encoder.Submit(serializer_->Serialize(corpus_->tables[1]),
                               &trace);
  ASSERT_TRUE(future.get().ok());
  const obs::StageBreakdown b = obs::ComputeStages(trace);
  EXPECT_GE(b.batch_us, 30000.0);
  EXPECT_LT(b.batch_us, 2000000.0) << "30ms delay took " << b.batch_us
                                   << "us: dispatcher stamped wrong stage?";
}

TEST_F(ReqTraceFixture, ServerWritesParsableAccessLogWithUniqueRequestIds) {
  const std::string log_path =
      ::testing::TempDir() + "/tabrep_access_log_test.jsonl";
  std::remove(log_path.c_str());
  Tensor with_log_hidden;
  {
    serve::BatchedEncoder encoder(model_, {});
    net::ServerOptions sopts;
    sopts.access_log_path = log_path;
    net::Server server(&encoder, sopts);
    ASSERT_TRUE(server.Start().ok());
    StatusOr<net::Client> client = net::Client::Connect("127.0.0.1",
                                                        server.port());
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 6; ++i) {
      StatusOr<net::EncodeResult> out =
          client->Encode(serializer_->Serialize(corpus_->tables[i % 3]));
      ASSERT_TRUE(out.ok());
      ASSERT_TRUE(out->status.ok());
      if (i == 0) with_log_hidden = out->encoded.hidden;
    }
  }  // server down: the log is complete

  std::ifstream in(log_path);
  ASSERT_TRUE(in.good()) << log_path << " was not written";
  std::set<uint64_t> ids;
  int lines = 0, cache_hits = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    Result<obs::JsonValue> doc = obs::JsonParse(line);
    ASSERT_TRUE(doc.ok()) << "unparsable access-log line: " << line;
    for (const char* key : {"request_id", "conn", "seq", "status",
                            "cache_hit", "batch_size", "total_us",
                            "stages_us"}) {
      ASSERT_NE(doc->Find(key), nullptr) << key << " missing in: " << line;
    }
    ids.insert(static_cast<uint64_t>(doc->Find("request_id")->AsNumber()));
    if (doc->Find("cache_hit")->AsBool()) ++cache_hits;
    EXPECT_EQ(doc->Find("status")->AsString(), "OK");
    EXPECT_GE(doc->Find("total_us")->AsNumber(), 0.0);
  }
  EXPECT_EQ(lines, 6);
  EXPECT_EQ(ids.size(), 6u) << "request ids must be process-unique";
  // Tables repeat (i % 3), so the second pass hits the encode cache.
  EXPECT_GE(cache_hits, 1);

  // Tracing is observation, not transformation: the same table through
  // a server WITHOUT the access log encodes bitwise-identically.
  {
    serve::BatchedEncoder encoder(model_, {});
    net::Server server(&encoder);
    ASSERT_TRUE(server.Start().ok());
    StatusOr<net::Client> client = net::Client::Connect("127.0.0.1",
                                                        server.port());
    ASSERT_TRUE(client.ok());
    StatusOr<net::EncodeResult> out =
        client->Encode(serializer_->Serialize(corpus_->tables[0]));
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(out->status.ok());
    ASSERT_EQ(out->encoded.hidden.shape(), with_log_hidden.shape());
    EXPECT_EQ(std::memcmp(out->encoded.hidden.data(), with_log_hidden.data(),
                          static_cast<size_t>(with_log_hidden.numel()) *
                              sizeof(float)),
              0)
        << "access log changed encode output";
  }
  std::remove(log_path.c_str());
}

TEST_F(ReqTraceFixture, StopMidLoadFlushesEveryAccountedResponse) {
  // Shutdown durability (ISSUE 8): Stop() flushes + fsyncs the access
  // log after the event loop exits, so every response the server
  // accounted before dying is on disk as a complete JSONL line — no
  // truncated tail from buffered stdio. The server is stopped while
  // clients are mid-flight; a response a client managed to read was
  // logged before its bytes hit the socket, so the on-disk line count
  // must be at least the clients' received total, and every line must
  // still parse.
  const std::string log_path =
      ::testing::TempDir() + "/tabrep_access_log_midload.jsonl";
  std::remove(log_path.c_str());
  std::atomic<uint64_t> received{0};  // ok + shed + typed errors read back
  {
    serve::BatchedEncoderOptions eopts;
    eopts.max_batch = 1;
    eopts.max_wait_us = 0;
    eopts.cache_capacity = 0;
    eopts.dispatch_delay_us = 5000;  // 5ms/batch: Stop() lands mid-load
    serve::BatchedEncoder encoder(model_, eopts);
    net::ServerOptions sopts;
    sopts.access_log_path = log_path;
    sopts.max_inflight_per_conn = 2;  // small cap: some requests shed
    net::Server server(&encoder, sopts);
    ASSERT_TRUE(server.Start().ok());

    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([&, c] {
        StatusOr<net::Client> client =
            net::Client::Connect("127.0.0.1", server.port());
        if (!client.ok()) return;
        for (int r = 0; r < 400; ++r) {
          StatusOr<net::EncodeResult> out = client->Encode(
              serializer_->Serialize(corpus_->tables[(c + r) % 6]));
          if (!out.ok()) return;  // server stopped under us — expected
          received.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    server.Stop();  // mid-load: clients still have requests in flight
    for (std::thread& t : clients) t.join();
  }

  EXPECT_GT(received.load(), 0u) << "no response landed before Stop()";
  std::ifstream in(log_path);
  ASSERT_TRUE(in.good()) << log_path << " was not written";
  uint64_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    Result<obs::JsonValue> doc = obs::JsonParse(line);
    ASSERT_TRUE(doc.ok()) << "truncated/corrupt access-log line: " << line;
    ASSERT_NE(doc->Find("status"), nullptr);
  }
  EXPECT_GE(lines, received.load())
      << "a response reached a client but never reached the flushed log";
  std::remove(log_path.c_str());
}

TEST_F(ReqTraceFixture, StageHistogramsPopulateAfterServedTraffic) {
  obs::Registry& reg = obs::Registry::Get();
  const uint64_t queue_before =
      reg.histogram("tabrep.serve.stage.queue.us").Stats().count;
  const uint64_t inf_before =
      reg.histogram("tabrep.serve.stage.inference.us").Stats().count;

  serve::BatchedEncoder encoder(model_, {});
  net::Server server(&encoder);
  ASSERT_TRUE(server.Start().ok());
  StatusOr<net::Client> client = net::Client::Connect("127.0.0.1",
                                                      server.port());
  ASSERT_TRUE(client.ok());
  const int n = 5;
  for (int i = 0; i < n; ++i) {
    StatusOr<net::EncodeResult> out =
        client->Encode(serializer_->Serialize(corpus_->tables[i]));
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(out->status.ok());
  }

  // The event loop writes the response before it records stage
  // metrics (trace.written must stamp after the socket write), so the
  // client can observe the last reply a beat before FinishRequest
  // lands. Poll briefly instead of asserting immediately.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (reg.histogram("tabrep.serve.stage.queue.us").Stats().count <
             queue_before + n &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(reg.histogram("tabrep.serve.stage.queue.us").Stats().count,
            queue_before + n);
  EXPECT_EQ(reg.histogram("tabrep.serve.stage.inference.us").Stats().count,
            inf_before + n);
}

TEST_F(ReqTraceFixture, ConcurrentTracedSubmitsAreRaceFree) {
  // TSan hammer (reqtrace_test_4threads): many client threads submit
  // with their own traces while the dispatcher batches across them; the
  // stamps must land without data races and in chain order everywhere.
  serve::BatchedEncoderOptions opts;
  opts.max_batch = 4;
  opts.max_wait_us = 500;
  opts.cache_capacity = 0;
  serve::BatchedEncoder encoder(model_, opts);

  std::vector<TokenizedTable> inputs;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(serializer_->Serialize(corpus_->tables[i]));
  }
  const int num_threads = 4;
  const int rounds = 6;
  std::vector<int> bad(static_cast<size_t>(num_threads), 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < rounds; ++r) {
        RequestContext trace;
        trace.received = Clock::now();
        trace.decoded = trace.received;
        auto future = encoder.Submit(
            inputs[static_cast<size_t>((t * rounds + r) % 8)], &trace);
        if (!future.get().ok() || !trace.submitted ||
            trace.encode_end < trace.encode_start ||
            trace.encode_start < trace.dequeued || trace.batch_size < 1) {
          ++bad[static_cast<size_t>(t)];
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int b : bad) EXPECT_EQ(b, 0);
}

}  // namespace
}  // namespace tabrep
