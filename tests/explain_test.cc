#include <gtest/gtest.h>

#include <cmath>

#include "models/explain.h"
#include "serialize/vocab_builder.h"
#include "table/synth.h"

namespace tabrep {
namespace {

class ExplainFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 10;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 1000;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    serializer_ = new TableSerializer(tokenizer_);
    ModelConfig config;
    config.family = ModelFamily::kTurl;
    config.vocab_size = tokenizer_->vocab().size();
    config.entity_vocab_size = corpus_->entities.size();
    config.transformer.dim = 32;
    config.transformer.num_layers = 2;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 64;
    config.transformer.dropout = 0.0f;
    model_ = new TableEncoderModel(config);
    model_->SetTraining(false);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    model_ = nullptr;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
  static TableEncoderModel* model_;
};

TableCorpus* ExplainFixture::corpus_ = nullptr;
WordPieceTokenizer* ExplainFixture::tokenizer_ = nullptr;
TableSerializer* ExplainFixture::serializer_ = nullptr;
TableEncoderModel* ExplainFixture::model_ = nullptr;

TEST_F(ExplainFixture, RolloutIsADistribution) {
  Table t = MakeCountryDemoTable();
  TokenizedTable serialized = serializer_->Serialize(t);
  Rng rng(1);
  models::Encoded enc = model_->Encode(serialized, rng,
                                         {.need_cells = false,
                                          .capture_attention = true});
  auto relevance = models::AttentionRollout(enc.attention, 0);
  ASSERT_EQ(relevance.size(), serialized.tokens.size());
  double total = 0;
  for (double r : relevance) {
    EXPECT_GE(r, 0.0);
    total += r;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST_F(ExplainFixture, TargetRetainsResidualRelevance) {
  // With the 0.5 residual term, the target token itself must keep a
  // sizable share of its own relevance.
  Table t = MakeCountryDemoTable();
  TokenizedTable serialized = serializer_->Serialize(t);
  Rng rng(2);
  models::Encoded enc = model_->Encode(serialized, rng,
                                         {.need_cells = false,
                                          .capture_attention = true});
  const int64_t target = serialized.size() / 2;
  auto relevance = models::AttentionRollout(enc.attention, target);
  EXPECT_GE(relevance[static_cast<size_t>(target)], 0.2);
}

TEST_F(ExplainFixture, ExplainCellRanksItselfHighly) {
  Table t = MakeCountryDemoTable();
  TokenizedTable serialized = serializer_->Serialize(t);
  Rng rng(3);
  auto attributions =
      models::ExplainCell(*model_, serialized, t, 0, 1, 5, rng);
  ASSERT_FALSE(attributions.empty());
  // Relevance sorted descending.
  for (size_t i = 1; i < attributions.size(); ++i) {
    EXPECT_GE(attributions[i - 1].relevance, attributions[i].relevance);
  }
  // The explained cell itself appears among the top contributors.
  bool self_found = false;
  for (const auto& a : attributions) {
    if (a.row == 0 && a.col == 1) self_found = true;
    EXPECT_FALSE(a.description.empty());
  }
  EXPECT_TRUE(self_found);
}

TEST_F(ExplainFixture, TurlExplanationsRespectStructure) {
  // Under the TURL visibility matrix, a cell's relevant context can
  // only be same-row/same-column/context; relevance on unrelated cells
  // must be (near) zero for a 2-layer rollout... but rollout mixes via
  // context tokens, so we only check the weaker property: the summed
  // relevance over same-row + same-column + context exceeds the
  // relevance over unrelated cells.
  Table t = MakeCountryDemoTable();
  TokenizedTable serialized = serializer_->Serialize(t);
  Rng rng(4);
  const CellSpan* span = serialized.FindCell(1, 1);
  ASSERT_NE(span, nullptr);
  models::Encoded enc = model_->Encode(serialized, rng,
                                         {.need_cells = false,
                                          .capture_attention = true});
  auto relevance = models::AttentionRollout(enc.attention, span->begin);
  double related = 0, unrelated = 0;
  for (size_t i = 0; i < serialized.tokens.size(); ++i) {
    const TokenInfo& tok = serialized.tokens[i];
    if (tok.kind != static_cast<int32_t>(TokenKind::kCell)) {
      related += relevance[i];
    } else if (tok.row == 2 || tok.column == 2) {  // row 1/col 1 in grid coords
      related += relevance[i];
    } else {
      unrelated += relevance[i];
    }
  }
  EXPECT_GT(related, unrelated);
}

TEST_F(ExplainFixture, TopKLimitsOutput) {
  Table t = MakeCountryDemoTable();
  TokenizedTable serialized = serializer_->Serialize(t);
  Rng rng(5);
  auto attributions =
      models::ExplainCell(*model_, serialized, t, 0, 0, 3, rng);
  EXPECT_LE(attributions.size(), 3u);
}

}  // namespace
}  // namespace tabrep
