#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "models/table_encoder.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "serialize/vocab_builder.h"
#include "serve/serve.h"
#include "table/synth.h"

// Model-level contract of the int8 quantized inference path (ISSUE 9):
// calibrated int8 encodes track f32 within tolerance, stay bitwise
// reproducible across thread counts, survive a checkpoint round trip,
// and stay distinguishable from f32 end to end (serve cache keys and
// the wire precision flag).

namespace tabrep {
namespace {

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

/// Shared tiny-corpus fixture (same shape as ServeFixture: building
/// the vocab once is the slow part).
class QuantFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 30;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 1500;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    SerializerOptions sopts;
    sopts.max_tokens = 96;
    serializer_ = new TableSerializer(tokenizer_, sopts);
  }
  static void TearDownTestSuite() {
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static ModelConfig TinyConfig(ModelFamily family) {
    ModelConfig config;
    config.family = family;
    config.vocab_size = tokenizer_->vocab().size();
    config.entity_vocab_size = corpus_->entities.size();
    config.transformer.dim = 32;
    config.transformer.num_layers = 1;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 64;
    config.transformer.dropout = 0.0f;
    config.max_position = 128;
    return config;
  }

  static TokenizedTable Table(int i) {
    return serializer_->Serialize(corpus_->tables[static_cast<size_t>(i)]);
  }

  static std::vector<TokenizedTable> CalibrationCorpus(int n) {
    std::vector<TokenizedTable> out;
    for (int i = 0; i < n; ++i) out.push_back(Table(i));
    return out;
  }

  static Tensor EncodeHidden(models::TableEncoderModel& model,
                             const TokenizedTable& input,
                             kernels::Precision precision) {
    models::EncodeOptions opts;
    opts.need_cells = true;
    opts.inference = true;
    opts.precision = precision;
    Rng rng(1);
    return model.Encode(input, rng, opts).hidden.value();
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
};

TableCorpus* QuantFixture::corpus_ = nullptr;
WordPieceTokenizer* QuantFixture::tokenizer_ = nullptr;
TableSerializer* QuantFixture::serializer_ = nullptr;

/// Restores the default (env-resolved) pool on scope exit.
struct ThreadCountGuard {
  ~ThreadCountGuard() { runtime::Configure({0}); }
};

TEST_F(QuantFixture, UncalibratedInt8FallsBackToFloatBitwise) {
  TableEncoderModel model(TinyConfig(ModelFamily::kVanilla));
  model.SetTraining(false);
  obs::Counter& fallback =
      obs::Registry::Get().counter("tabrep.nn.int8_fallback");
  const TokenizedTable input = Table(0);
  Tensor f32 = EncodeHidden(model, input, kernels::Precision::kFloat32);
  const uint64_t before = fallback.value();
  Tensor int8 = EncodeHidden(model, input, kernels::Precision::kInt8);
  // Every Linear is uncalibrated, so each one falls back — the request
  // degrades to the f32 path bit for bit rather than failing.
  EXPECT_GT(fallback.value(), before);
  EXPECT_TRUE(BitwiseEqual(f32, int8));
}

TEST_F(QuantFixture, CalibratedInt8TracksFloatWithinTolerance) {
  // kTabert also routes precision through the vertical-attention stage.
  TableEncoderModel model(TinyConfig(ModelFamily::kTabert));
  model.SetTraining(false);
  const int64_t calibrated = model.CalibrateInt8(CalibrationCorpus(8));
  EXPECT_GT(calibrated, 0);
  obs::Counter& fallback =
      obs::Registry::Get().counter("tabrep.nn.int8_fallback");
  for (int ti : {0, 3, 7}) {
    const TokenizedTable input = Table(ti);
    Tensor f32 = EncodeHidden(model, input, kernels::Precision::kFloat32);
    const uint64_t before = fallback.value();
    Tensor int8 = EncodeHidden(model, input, kernels::Precision::kInt8);
    // Every projection is calibrated: no layer may fall back.
    EXPECT_EQ(fallback.value(), before) << "table " << ti;
    ASSERT_EQ(f32.shape(), int8.shape());
    double max_diff = 0.0, sum_diff = 0.0;
    for (int64_t i = 0; i < f32.numel(); ++i) {
      const double d = std::fabs(static_cast<double>(f32.data()[i]) -
                                 static_cast<double>(int8.data()[i]));
      max_diff = std::max(max_diff, d);
      sum_diff += d;
    }
    const double mean_diff = sum_diff / static_cast<double>(f32.numel());
    // Post-layernorm activations are O(1), so these are relative-ish
    // bounds: the 7-bit path must stay close but is not expected to be
    // bitwise (that would mean the quantized kernels never ran).
    EXPECT_LT(max_diff, 0.5) << "table " << ti;
    EXPECT_LT(mean_diff, 0.05) << "table " << ti;
    EXPECT_GT(max_diff, 0.0) << "table " << ti;
  }
}

TEST_F(QuantFixture, Int8EncodeThreadCountInvariantBitwise) {
  TableEncoderModel model(TinyConfig(ModelFamily::kVanilla));
  model.SetTraining(false);
  ASSERT_GT(model.CalibrateInt8(CalibrationCorpus(6)), 0);
  const TokenizedTable input = Table(2);
  ThreadCountGuard guard;
  runtime::Configure({1});
  Tensor one = EncodeHidden(model, input, kernels::Precision::kInt8);
  runtime::Configure({4});
  Tensor four = EncodeHidden(model, input, kernels::Precision::kInt8);
  EXPECT_TRUE(BitwiseEqual(one, four));
}

TEST_F(QuantFixture, CheckpointRoundTripReproducesInt8Bitwise) {
  const ModelConfig config = TinyConfig(ModelFamily::kVanilla);
  TableEncoderModel exported(config);
  exported.SetTraining(false);
  ASSERT_GT(exported.CalibrateInt8(CalibrationCorpus(6)), 0);
  TensorMap state = exported.ExportStateDict();
  int quant_entries = 0;
  for (const auto& [name, tensor] : state) {
    if (name.rfind("quant/", 0) == 0) ++quant_entries;
  }
  // Calibrated layers export act_absmax + w_scale pairs.
  EXPECT_GT(quant_entries, 0);
  EXPECT_EQ(quant_entries % 2, 0);

  TableEncoderModel imported(config);
  imported.SetTraining(false);
  Status status = imported.ImportStateDict(state);
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (int ti : {0, 4}) {
    const TokenizedTable input = Table(ti);
    Tensor a = EncodeHidden(exported, input, kernels::Precision::kInt8);
    Tensor b = EncodeHidden(imported, input, kernels::Precision::kInt8);
    EXPECT_TRUE(BitwiseEqual(a, b)) << "table " << ti;
  }
}

TEST_F(QuantFixture, ImportRejectsInconsistentRecordedScales) {
  const ModelConfig config = TinyConfig(ModelFamily::kVanilla);
  TableEncoderModel exported(config);
  exported.SetTraining(false);
  ASSERT_GT(exported.CalibrateInt8(CalibrationCorpus(4)), 0);
  TensorMap state = exported.ExportStateDict();
  bool tampered = false;
  for (auto& [name, tensor] : state) {
    const std::string suffix = "w_scale";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      tensor.data()[0] += 1.0f;  // break the recorded per-channel scale
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered);
  TableEncoderModel imported(config);
  imported.SetTraining(false);
  Status status = imported.ImportStateDict(state);
  EXPECT_FALSE(status.ok());
}

TEST_F(QuantFixture, ServeCachesInt8AndFloatSeparately) {
  TableEncoderModel model(TinyConfig(ModelFamily::kVanilla));
  model.SetTraining(false);
  ASSERT_GT(model.CalibrateInt8(CalibrationCorpus(6)), 0);
  serve::BatchedEncoder encoder(&model);
  const TokenizedTable input = Table(1);

  StatusOr<serve::EncodedTablePtr> f32 = encoder.Encode(input);
  ASSERT_TRUE(f32.ok()) << f32.status().ToString();
  StatusOr<serve::EncodedTablePtr> int8 =
      encoder.Encode(input, kernels::Precision::kInt8);
  ASSERT_TRUE(int8.ok()) << int8.status().ToString();

  // Same table, distinct cache identities and result labels: an int8
  // client must never be served a cached f32 encoding (or vice versa).
  EXPECT_NE(f32.value().get(), int8.value().get());
  EXPECT_EQ(f32.value()->precision, kernels::Precision::kFloat32);
  EXPECT_EQ(int8.value()->precision, kernels::Precision::kInt8);
  EXPECT_FALSE(BitwiseEqual(f32.value()->hidden, int8.value()->hidden));

  // Re-asking under each precision hits the matching cache entry.
  StatusOr<serve::EncodedTablePtr> f32_again = encoder.Encode(input);
  ASSERT_TRUE(f32_again.ok());
  EXPECT_EQ(f32_again.value().get(), f32.value().get());
  StatusOr<serve::EncodedTablePtr> int8_again =
      encoder.Encode(input, kernels::Precision::kInt8);
  ASSERT_TRUE(int8_again.ok());
  EXPECT_EQ(int8_again.value().get(), int8.value().get());
}

TEST_F(QuantFixture, WireCarriesPrecisionFlagBothWays) {
  serve::EncodedTable encoded;
  encoded.hidden = Tensor::Zeros({3, 4});
  for (int64_t i = 0; i < encoded.hidden.numel(); ++i)
    encoded.hidden.data()[i] = static_cast<float>(i) * 0.25f;
  encoded.precision = kernels::Precision::kInt8;

  std::string payload;
  uint8_t flags = 0;
  net::EncodeEncodedTable(encoded, &payload, &flags);
  EXPECT_NE(flags & net::kFlagInt8, 0);
  StatusOr<serve::EncodedTable> back = net::DecodeEncodedTable(payload, flags);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().precision, kernels::Precision::kInt8);
  EXPECT_TRUE(BitwiseEqual(back.value().hidden, encoded.hidden));

  encoded.precision = kernels::Precision::kFloat32;
  payload.clear();
  flags = 0;
  net::EncodeEncodedTable(encoded, &payload, &flags);
  EXPECT_EQ(flags & net::kFlagInt8, 0);
  back = net::DecodeEncodedTable(payload, flags);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().precision, kernels::Precision::kFloat32);
}

}  // namespace
}  // namespace tabrep
