#include <gtest/gtest.h>

#include "sql/ast.h"
#include "sql/executor.h"
#include "sql/generator.h"
#include "sql/parser.h"
#include "table/synth.h"

namespace tabrep {
namespace {

using sql::Aggregate;
using sql::CompareOp;
using sql::Condition;
using sql::Execute;
using sql::GenerateQuery;
using sql::ParseQuery;
using sql::Query;

Table TestTable() {
  Table t(std::vector<std::string>{"Country", "Continent", "Population"});
  EXPECT_TRUE(t.AppendRow({Value::String("France"), Value::String("Europe"),
                           Value::Double(67.4)})
                  .ok());
  EXPECT_TRUE(t.AppendRow({Value::String("Germany"), Value::String("Europe"),
                           Value::Double(83.2)})
                  .ok());
  EXPECT_TRUE(t.AppendRow({Value::String("Japan"), Value::String("Asia"),
                           Value::Double(125.7)})
                  .ok());
  EXPECT_TRUE(
      t.AppendRow({Value::String("Peru"), Value::String("South America"),
                   Value::Null()})
          .ok());
  t.InferTypes();
  return t;
}

Query MakeQuery(Aggregate agg, std::string select,
                std::vector<Condition> where = {}) {
  Query q;
  q.aggregate = agg;
  q.select_column = std::move(select);
  q.where = std::move(where);
  return q;
}

TEST(SqlAstTest, ToSqlRendering) {
  Query q = MakeQuery(Aggregate::kMax, "Population",
                      {{"Continent", CompareOp::kEq,
                        Value::String("Europe")}});
  EXPECT_EQ(q.ToSql(),
            "SELECT MAX(Population) FROM t WHERE Continent = 'Europe'");
}

TEST(SqlAstTest, QuotedIdentifiersAndLiterals) {
  Query q = MakeQuery(Aggregate::kNone, "hours-per-week",
                      {{"income", CompareOp::kNe,
                        Value::String("it's")}});
  EXPECT_EQ(q.ToSql(),
            "SELECT \"hours-per-week\" FROM t WHERE income != 'it''s'");
}

TEST(SqlParserTest, RoundTripsSimpleQueries) {
  for (const Query& q : {
           MakeQuery(Aggregate::kNone, "Country"),
           MakeQuery(Aggregate::kCount, "Country",
                     {{"Continent", CompareOp::kEq,
                       Value::String("Europe")}}),
           MakeQuery(Aggregate::kAvg, "Population",
                     {{"Population", CompareOp::kGt, Value::Double(50.0)},
                      {"Continent", CompareOp::kNe,
                       Value::String("Asia")}}),
           MakeQuery(Aggregate::kSum, "hours-per-week",
                     {{"age", CompareOp::kLe, Value::Int(40)}}),
       }) {
    auto parsed = ParseQuery(q.ToSql());
    ASSERT_TRUE(parsed.ok()) << q.ToSql() << ": "
                             << parsed.status().ToString();
    EXPECT_TRUE(*parsed == q) << q.ToSql() << " vs " << parsed->ToSql();
  }
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  auto parsed = ParseQuery("select max(Population) from t where x = 1");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->aggregate, Aggregate::kMax);
}

TEST(SqlParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE b ==").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t extra").ok());
  EXPECT_FALSE(ParseQuery("SELECT MAX(a FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE b ! 1").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE b = 'unterminated").ok());
}

TEST(SqlExecutorTest, BareSelectFiltersRows) {
  Table t = TestTable();
  Query q = MakeQuery(Aggregate::kNone, "Country",
                      {{"Continent", CompareOp::kEq,
                        Value::String("Europe")}});
  auto r = Execute(q, t);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->values.size(), 2u);
  EXPECT_EQ(r->values[0].ToText(), "France");
  EXPECT_EQ(r->values[1].ToText(), "Germany");
  EXPECT_EQ(r->rows, (std::vector<int64_t>{0, 1}));
}

TEST(SqlExecutorTest, Aggregates) {
  Table t = TestTable();
  auto exec = [&](Aggregate agg) {
    auto r = Execute(MakeQuery(agg, "Population"), t);
    EXPECT_TRUE(r.ok());
    return r->values[0];
  };
  EXPECT_EQ(exec(Aggregate::kCount).AsInt(), 3);  // NULL skipped
  EXPECT_DOUBLE_EQ(exec(Aggregate::kMin).AsDouble(), 67.4);
  EXPECT_DOUBLE_EQ(exec(Aggregate::kMax).AsDouble(), 125.7);
  EXPECT_NEAR(exec(Aggregate::kSum).AsDouble(), 276.3, 1e-9);
  EXPECT_NEAR(exec(Aggregate::kAvg).AsDouble(), 92.1, 1e-9);
}

TEST(SqlExecutorTest, NumericComparisons) {
  Table t = TestTable();
  Query q = MakeQuery(Aggregate::kCount, "Country",
                      {{"Population", CompareOp::kGt, Value::Int(80)}});
  auto r = Execute(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->values[0].AsInt(), 2);  // Germany, Japan
}

TEST(SqlExecutorTest, NullNeverMatches) {
  Table t = TestTable();
  Query q = MakeQuery(Aggregate::kCount, "Country",
                      {{"Population", CompareOp::kLe, Value::Int(10000)}});
  auto r = Execute(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->values[0].AsInt(), 3);  // Peru's NULL population excluded
}

TEST(SqlExecutorTest, UnknownColumnFails) {
  Table t = TestTable();
  EXPECT_FALSE(Execute(MakeQuery(Aggregate::kNone, "Nope"), t).ok());
  Query q = MakeQuery(Aggregate::kNone, "Country",
                      {{"Nope", CompareOp::kEq, Value::Int(1)}});
  EXPECT_FALSE(Execute(q, t).ok());
}

TEST(SqlExecutorTest, AggregateOverTextFails) {
  Table t = TestTable();
  EXPECT_FALSE(Execute(MakeQuery(Aggregate::kSum, "Country"), t).ok());
}

TEST(SqlExecutorTest, EmptyMatchGivesNullAggregate) {
  Table t = TestTable();
  Query q = MakeQuery(Aggregate::kMax, "Population",
                      {{"Continent", CompareOp::kEq,
                        Value::String("Atlantis")}});
  auto r = Execute(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->values[0].is_null());
}

TEST(SqlExecutorTest, MatchesConditionSemantics) {
  using sql::MatchesCondition;
  EXPECT_TRUE(MatchesCondition(Value::Int(5), CompareOp::kEq,
                               Value::Double(5.0)));
  EXPECT_TRUE(MatchesCondition(Value::String("b"), CompareOp::kGt,
                               Value::String("a")));
  EXPECT_FALSE(MatchesCondition(Value::Null(), CompareOp::kEq,
                                Value::Int(0)));
  EXPECT_TRUE(MatchesCondition(Value::Int(3), CompareOp::kNe,
                               Value::Int(4)));
}

TEST(SqlGeneratorTest, GeneratedQueriesAreValidAndAnswerable) {
  SyntheticCorpusOptions opts;
  opts.num_tables = 20;
  TableCorpus corpus = GenerateSyntheticCorpus(opts);
  Rng rng(3);
  int generated = 0;
  for (const Table& t : corpus.tables) {
    for (int i = 0; i < 4; ++i) {
      auto gq = GenerateQuery(t, rng);
      if (!gq) continue;
      ++generated;
      // Result must be reproducible by re-execution.
      auto again = Execute(gq->query, t);
      ASSERT_TRUE(again.ok()) << gq->query.ToSql();
      EXPECT_EQ(again->values.size(), gq->result.values.size());
      EXPECT_FALSE(gq->result.empty());
      EXPECT_FALSE(gq->result.values.front().is_null());
      // The SQL text round-trips through the parser.
      auto parsed = ParseQuery(gq->query.ToSql());
      ASSERT_TRUE(parsed.ok()) << gq->query.ToSql();
      EXPECT_TRUE(*parsed == gq->query);
      // The question mentions the select column.
      EXPECT_FALSE(gq->question.empty());
    }
  }
  EXPECT_GT(generated, 40);
}

TEST(SqlGeneratorTest, QuestionRendering) {
  Query q = MakeQuery(Aggregate::kMax, "Population",
                      {{"Continent", CompareOp::kEq,
                        Value::String("Europe")}});
  EXPECT_EQ(sql::QueryToQuestion(q),
            "what is the maximum population when continent is europe");
}

TEST(SqlGeneratorTest, EmptyTableYieldsNothing) {
  Table t(std::vector<std::string>{"a"});
  Rng rng(4);
  EXPECT_FALSE(GenerateQuery(t, rng).has_value());
}

}  // namespace
}  // namespace tabrep
