#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "models/table_encoder.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "obs/window.h"
#include "serialize/vocab_builder.h"
#include "serve/serve.h"
#include "table/synth.h"

// Global allocation counter for the zero-allocation record-path pin.
// Every operator new in this binary bumps it; the test snapshots it
// around the metric hot loop. Deletes stay count-free so teardown
// cannot skew the delta.
//
// GCC cannot see that the replacement operator new is malloc-backed
// and flags every new/free pairing in the TU; the pairing is correct
// by construction here.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
static std::atomic<uint64_t> g_allocations{0};

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tabrep {
namespace {

// --- WindowedRegistry: merge-on-read correctness. -----------------------

TEST(WindowTest, CounterDeltasFallOutOfTheWindow) {
  obs::Counter& c = obs::Registry::Get().counter("win.test.falloff");
  obs::WindowOptions wopts;
  wopts.window_secs = 3;
  obs::WindowedRegistry window(wopts);

  // Slot 0 carries 10, slot 1 carries 5, slot 2 nothing.
  c.Increment(10);
  window.Tick();
  c.Increment(5);
  window.Tick();
  window.Tick();

  obs::WindowedCounterStats stats;
  ASSERT_TRUE(window.CounterWindow("win.test.falloff", &stats));
  EXPECT_EQ(stats.delta, 15u);
  EXPECT_GT(stats.rate_per_sec, 0.0);

  // Two more empty ticks: the ring wraps, slot 0's 10 and slot 1's 5
  // are overwritten, and the window drains to zero.
  window.Tick();
  window.Tick();
  ASSERT_TRUE(window.CounterWindow("win.test.falloff", &stats));
  EXPECT_EQ(stats.delta, 0u);
  EXPECT_EQ(stats.rate_per_sec, 0.0);

  // Unknown names are a miss, not zeroed stats.
  EXPECT_FALSE(window.CounterWindow("win.test.never-recorded", &stats));
}

TEST(WindowTest, BaselinesExistingActivityAtConstruction) {
  obs::Counter& c = obs::Registry::Get().counter("win.test.baseline");
  c.Increment(1000);  // history that predates the window
  obs::WindowOptions wopts;
  wopts.window_secs = 4;
  obs::WindowedRegistry window(wopts);
  c.Increment(3);
  window.Tick();

  obs::WindowedCounterStats stats;
  ASSERT_TRUE(window.CounterWindow("win.test.baseline", &stats));
  EXPECT_EQ(stats.delta, 3u) << "pre-construction activity leaked in";
}

TEST(WindowTest, WindowedPercentilesAgreeWithCumulative) {
  // The acceptance pin: a window that covers all activity must report
  // the same percentiles as the cumulative histogram — both paths
  // reduce the identical bucket counts through StatsFromBucketCounts,
  // so agreement is exact, not merely within log-bucket tolerance.
  obs::Histogram& h = obs::Registry::Get().histogram("win.test.agree.us");
  obs::WindowOptions wopts;
  wopts.window_secs = 8;
  obs::WindowedRegistry window(wopts);

  // A wide log-spread of latencies, recorded across two slots.
  double v = 1.0;
  for (int i = 0; i < 4000; ++i) {
    h.Record(v);
    v *= 1.004;
    if (i == 2000) window.Tick();
  }
  window.Tick();

  const obs::HistogramStats cumulative = h.Stats();
  obs::WindowedHistogramStats windowed;
  ASSERT_TRUE(window.HistogramWindow("win.test.agree.us", &windowed));
  ASSERT_EQ(windowed.count, cumulative.count);
  // The windowed sum is reassembled from snapshot differences, so the
  // mean can differ by float rounding; percentiles reduce identical
  // integer bucket counts and must agree exactly.
  EXPECT_NEAR(windowed.mean, cumulative.mean, 1e-9 * cumulative.mean);
  EXPECT_DOUBLE_EQ(windowed.p50, cumulative.p50);
  EXPECT_DOUBLE_EQ(windowed.p95, cumulative.p95);
  EXPECT_DOUBLE_EQ(windowed.p99, cumulative.p99);
}

TEST(WindowTest, PartialWindowDropsOldPercentileMass) {
  // Record a low-latency era, roll it out of the window, then a
  // high-latency era: the windowed p50 must reflect only the recent
  // era while the cumulative p50 still sits between the two.
  obs::Histogram& h = obs::Registry::Get().histogram("win.test.eras.us");
  obs::WindowOptions wopts;
  wopts.window_secs = 2;
  obs::WindowedRegistry window(wopts);

  for (int i = 0; i < 1000; ++i) h.Record(10.0);
  window.Tick();
  window.Tick();  // low era now fills the whole ring
  for (int i = 0; i < 1000; ++i) h.Record(10000.0);
  window.Tick();
  window.Tick();  // high era overwrites both slots

  obs::WindowedHistogramStats windowed;
  ASSERT_TRUE(window.HistogramWindow("win.test.eras.us", &windowed));
  EXPECT_EQ(windowed.count, 1000u);
  EXPECT_GT(windowed.p50, 1000.0) << "old low-latency era still visible";
  const obs::HistogramStats cumulative = h.Stats();
  EXPECT_EQ(cumulative.count, 2000u);
  EXPECT_LT(cumulative.p50, 1000.0) << "cumulative median spans both eras";
}

TEST(WindowTest, CounterResetContributesPostResetValue) {
  // Registry::ResetAll (or a restarted exporter) shrinks cumulative
  // values; the slot must carry the post-reset value, never a huge
  // unsigned wraparound.
  obs::Counter& c = obs::Registry::Get().counter("win.test.reset");
  obs::WindowOptions wopts;
  wopts.window_secs = 4;
  obs::WindowedRegistry window(wopts);
  c.Increment(100);
  window.Tick();
  c.Reset();
  c.Increment(7);
  window.Tick();

  obs::WindowedCounterStats stats;
  ASSERT_TRUE(window.CounterWindow("win.test.reset", &stats));
  EXPECT_EQ(stats.delta, 107u);
}

TEST(WindowTest, ToJsonIsValidAndCarriesWindowedEntries) {
  obs::Counter& c = obs::Registry::Get().counter("win.test.json");
  obs::Histogram& h = obs::Registry::Get().histogram("win.test.json.us");
  obs::WindowOptions wopts;
  wopts.window_secs = 4;
  obs::WindowedRegistry window(wopts);
  c.Increment(5);
  for (int i = 0; i < 32; ++i) h.Record(100.0 + i);
  window.Tick();

  const std::string json = window.ToJson();
  ASSERT_TRUE(obs::JsonLint(json)) << json;
  Result<obs::JsonValue> doc = obs::JsonParse(json);
  ASSERT_TRUE(doc.ok());
  const obs::JsonValue* delta = doc->Get({"counters", "win.test.json",
                                          "delta"});
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->AsNumber(), 5.0);
  const obs::JsonValue* p99 = doc->Get({"histograms", "win.test.json.us",
                                        "p99"});
  ASSERT_NE(p99, nullptr);
  EXPECT_GT(p99->AsNumber(), 0.0);
  ASSERT_NE(doc->Find("window_secs"), nullptr);
  ASSERT_NE(doc->Find("covered_secs"), nullptr);
}

// --- Zero allocations on the record path (acceptance pin). --------------

TEST(WindowTest, RecordPathDoesNotAllocate) {
  // Pre-warm: instrument creation and the first Beat may allocate;
  // the steady-state record path must not. The WindowedRegistry exists
  // here to prove its presence adds nothing to the writer side —
  // all windowing cost is merge-on-read inside Tick()/queries.
  obs::Counter& c = obs::Registry::Get().counter("win.test.alloc.count");
  obs::Gauge& g = obs::Registry::Get().gauge("win.test.alloc.gauge");
  obs::Histogram& h = obs::Registry::Get().histogram("win.test.alloc.us");
  obs::Heartbeat heartbeat("win.test.alloc.lag.us");
  heartbeat.Beat();
  obs::WindowedRegistry window;
  window.Tick();

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    c.Increment();
    g.Set(static_cast<double>(i));
    h.Record(static_cast<double>(1 + (i % 4096)));
    heartbeat.Beat();
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "metric record path allocated " << (after - before) << " times";
}

// --- Heartbeat + watchdog units. ----------------------------------------

TEST(WatchdogTest, HeartbeatTracksLag) {
  obs::Heartbeat hb("win.test.hb.us");
  EXPECT_FALSE(hb.ever_beat());
  EXPECT_LT(hb.MicrosSinceBeat(), 0.0);
  hb.Beat();
  EXPECT_TRUE(hb.ever_beat());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double lag = hb.MicrosSinceBeat();
  EXPECT_GE(lag, 15000.0);
  hb.Beat();
  EXPECT_LT(hb.MicrosSinceBeat(), lag);
  // Inter-beat gaps land in the named histogram.
  EXPECT_GE(obs::Registry::Get().histogram("win.test.hb.us").Stats().count,
            1u);
}

TEST(WatchdogTest, ApplySloThresholds) {
  obs::SloConfig slo;
  slo.target_p99_us = 1000.0;
  slo.max_shed_rate = 0.1;

  obs::HealthVerdict ok;
  obs::ApplySlo(slo, 900.0, 0.05, &ok);
  EXPECT_EQ(ok.level, obs::HealthLevel::kOk);
  EXPECT_TRUE(ok.reasons.empty());

  obs::HealthVerdict degraded;
  obs::ApplySlo(slo, 1500.0, 0.0, &degraded);
  EXPECT_EQ(degraded.level, obs::HealthLevel::kDegraded);
  ASSERT_EQ(degraded.reasons.size(), 1u);
  EXPECT_EQ(degraded.reasons[0].code, "slo_p99");

  obs::HealthVerdict critical;
  obs::ApplySlo(slo, 2500.0, 0.25, &critical);  // 2x p99 target + shed
  EXPECT_EQ(critical.level, obs::HealthLevel::kCritical);
  ASSERT_EQ(critical.reasons.size(), 2u);
  EXPECT_EQ(critical.reasons[1].code, "slo_shed_rate");

  // Zero targets disable the checks entirely.
  obs::HealthVerdict unbounded;
  obs::ApplySlo(obs::SloConfig{}, 1e9, 1.0, &unbounded);
  EXPECT_EQ(unbounded.level, obs::HealthLevel::kOk);
}

TEST(WatchdogTest, OptionsFromEnv) {
  setenv("TABREP_WATCHDOG_INTERVAL_MS", "123", 1);
  setenv("TABREP_WATCHDOG_DEADMAN_MS", "456", 1);
  setenv("TABREP_SLO_P99_US", "7500", 1);
  setenv("TABREP_SLO_SHED_RATE", "0.25", 1);
  setenv("TABREP_WINDOW_SECS", "17", 1);
  obs::WatchdogOptions wopts = obs::WatchdogOptions::FromEnv();
  EXPECT_EQ(wopts.interval_ms, 123);
  EXPECT_EQ(wopts.deadman_ms, 456);
  EXPECT_DOUBLE_EQ(wopts.slo.target_p99_us, 7500.0);
  EXPECT_DOUBLE_EQ(wopts.slo.max_shed_rate, 0.25);
  EXPECT_EQ(obs::WindowOptions::FromEnv().window_secs, 17);
  unsetenv("TABREP_WATCHDOG_INTERVAL_MS");
  unsetenv("TABREP_WATCHDOG_DEADMAN_MS");
  unsetenv("TABREP_SLO_P99_US");
  unsetenv("TABREP_SLO_SHED_RATE");
  unsetenv("TABREP_WINDOW_SECS");
  EXPECT_EQ(obs::WatchdogOptions::FromEnv().interval_ms,
            obs::WatchdogOptions{}.interval_ms);
}

TEST(WatchdogTest, DeadmanTripsOnStalledHeartbeatAndRecovers) {
  obs::WatchdogOptions wopts;
  wopts.interval_ms = 10;
  wopts.deadman_ms = 50;
  obs::Heartbeat hb("win.test.deadman.us");
  obs::Watchdog watchdog(wopts, nullptr);
  watchdog.WatchHeartbeat("testloop", &hb);

  hb.Beat();
  watchdog.TickOnce();
  EXPECT_EQ(watchdog.verdict().level, obs::HealthLevel::kOk);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  watchdog.TickOnce();
  obs::HealthVerdict verdict = watchdog.verdict();
  EXPECT_NE(verdict.level, obs::HealthLevel::kOk);
  ASSERT_FALSE(verdict.reasons.empty());
  EXPECT_EQ(verdict.reasons[0].code, "testloop_stall");
  ASSERT_EQ(verdict.heartbeat_lag_us.size(), 1u);
  EXPECT_GE(verdict.heartbeat_lag_us[0].second, 50000.0);

  hb.Beat();
  watchdog.TickOnce();
  EXPECT_EQ(watchdog.verdict().level, obs::HealthLevel::kOk);
}

TEST(WatchdogTest, SloEvaluatesWindowedLatency) {
  // The watchdog folds the windowed p99 of its configured latency
  // histogram into the verdict; a latency burst inside the window
  // trips the SLO, and rolling it out of the window clears it.
  obs::WatchdogOptions wopts;
  wopts.interval_ms = 10;
  wopts.deadman_ms = 60000;  // irrelevant here
  wopts.slo.target_p99_us = 500.0;
  wopts.latency_histogram = "win.test.slo.request.us";
  wopts.requests_counter = "win.test.slo.requests";
  wopts.shed_counter = "win.test.slo.shed";
  obs::Histogram& lat =
      obs::Registry::Get().histogram("win.test.slo.request.us");
  obs::WindowOptions wo;
  wo.window_secs = 2;
  obs::WindowedRegistry window(wo);
  obs::Watchdog watchdog(wopts, &window);

  for (int i = 0; i < 200; ++i) lat.Record(5000.0);  // 10x the target
  watchdog.TickOnce();
  obs::HealthVerdict verdict = watchdog.verdict();
  EXPECT_EQ(verdict.level, obs::HealthLevel::kCritical);
  ASSERT_FALSE(verdict.reasons.empty());
  EXPECT_EQ(verdict.reasons[0].code, "slo_p99");
  EXPECT_GT(verdict.window_p99_us, 500.0);

  watchdog.TickOnce();
  watchdog.TickOnce();  // burst rolls out of the 2-slot window
  EXPECT_EQ(watchdog.verdict().level, obs::HealthLevel::kOk);
}

TEST(WatchdogTest, ProbesAreSampledIntoTheVerdict) {
  obs::WatchdogOptions wopts;
  wopts.interval_ms = 10;
  obs::Watchdog watchdog(wopts, nullptr);
  std::atomic<double> depth{3.0};
  watchdog.AddProbe("queue_depth", [&] { return depth.load(); });
  watchdog.AddProbe("rss_bytes", [] {
    return static_cast<double>(obs::ProcessRssBytes());
  });
  watchdog.TickOnce();
  obs::HealthVerdict verdict = watchdog.verdict();
  ASSERT_EQ(verdict.probes.size(), 2u);
  EXPECT_EQ(verdict.probes[0].first, "queue_depth");
  EXPECT_DOUBLE_EQ(verdict.probes[0].second, 3.0);
  EXPECT_GT(verdict.probes[1].second, 0.0) << "RSS probe read nothing";

  const std::string json =
      obs::HealthVerdictJson(verdict, obs::SloConfig{});
  ASSERT_TRUE(obs::JsonLint(json)) << json;
  Result<obs::JsonValue> doc = obs::JsonParse(json);
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(doc->Get({"probes", "queue_depth"}), nullptr);
}

TEST(WatchdogTest, BackgroundThreadPublishesVerdicts) {
  obs::WatchdogOptions wopts;
  wopts.interval_ms = 5;
  wopts.deadman_ms = 60000;
  obs::Heartbeat hb("win.test.bg.us");
  hb.Beat();
  obs::Watchdog watchdog(wopts, nullptr);
  watchdog.WatchHeartbeat("bg", &hb);
  watchdog.Start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (watchdog.verdict().ticks < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    hb.Beat();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  watchdog.Stop();
  EXPECT_GE(watchdog.verdict().ticks, 3);
  EXPECT_EQ(watchdog.verdict().level, obs::HealthLevel::kOk);
}

// --- End-to-end: a wedged dispatcher flips kHealth to degraded. ---------

/// Corpus + tokenizer + model shared by the socket tests (vocab
/// building is the slow part; same idiom as NetFixture).
class WindowNetFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 8;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 800;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    SerializerOptions sopts;
    sopts.max_tokens = 64;
    serializer_ = new TableSerializer(tokenizer_, sopts);

    ModelConfig config;
    config.family = ModelFamily::kTapas;
    config.vocab_size = tokenizer_->vocab().size();
    config.entity_vocab_size = corpus_->entities.size();
    config.transformer.dim = 32;
    config.transformer.num_layers = 1;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 64;
    config.transformer.dropout = 0.0f;
    config.max_position = 128;
    model_ = new TableEncoderModel(config);
    model_->SetTraining(false);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    model_ = nullptr;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
  static TableEncoderModel* model_;
};

TableCorpus* WindowNetFixture::corpus_ = nullptr;
WordPieceTokenizer* WindowNetFixture::tokenizer_ = nullptr;
TableSerializer* WindowNetFixture::serializer_ = nullptr;
TableEncoderModel* WindowNetFixture::model_ = nullptr;

/// Polls kHealth until `want_status` or the deadline; returns the
/// last parsed document (Null on transport/parse failure).
obs::JsonValue PollHealthUntil(net::Client* client,
                               const std::string& want_status,
                               std::chrono::milliseconds deadline_ms,
                               bool* reached) {
  *reached = false;
  obs::JsonValue last;
  const auto deadline = std::chrono::steady_clock::now() + deadline_ms;
  while (std::chrono::steady_clock::now() < deadline) {
    StatusOr<std::string> health = client->Health();
    if (!health.ok()) return last;
    Result<obs::JsonValue> doc = obs::JsonParse(*health);
    if (!doc.ok()) return last;
    last = std::move(*doc);
    const obs::JsonValue* status = last.Find("status");
    if (status != nullptr && status->AsString() == want_status) {
      *reached = true;
      return last;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return last;
}

TEST_F(WindowNetFixture, DispatcherStallFlipsHealthDegradedThenRecovers) {
  // One slow batch: the dispatcher sleeps ~1.5s mid-dispatch, so its
  // heartbeat (beaten per wakeup, every <=100ms when healthy) goes
  // quiet. With a 300ms deadman and 30ms watchdog cadence the verdict
  // must flip to degraded with a dispatcher_stall reason within 2x the
  // deadman of the stall being induced, and return to ok once the
  // batch completes.
  serve::BatchedEncoderOptions eopts;
  eopts.max_batch = 1;
  eopts.max_wait_us = 0;
  eopts.cache_capacity = 0;
  eopts.dispatch_delay_us = 1500000;
  serve::BatchedEncoder encoder(model_, eopts);

  net::ServerOptions sopts;
  sopts.watchdog_interval_ms = 30;
  sopts.watchdog_deadman_ms = 300;
  sopts.window_secs = 10;
  net::Server server(&encoder, sopts);
  ASSERT_TRUE(server.Start().ok());

  StatusOr<net::Client> sender =
      net::Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(sender.ok());
  StatusOr<net::Client> prober =
      net::Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(prober.ok());

  // Healthy first: dispatcher and event loop both beating.
  bool reached = false;
  obs::JsonValue doc = PollHealthUntil(&*prober, "ok",
                                       std::chrono::milliseconds(3000),
                                       &reached);
  ASSERT_TRUE(reached) << "server never reported ok at idle";

  // Induce the stall. kHealth is answered on the event loop, so the
  // probe connection keeps working while the dispatcher sleeps.
  const auto stall_start = std::chrono::steady_clock::now();
  ASSERT_TRUE(
      sender->SendEncodeRequest(serializer_->Serialize(corpus_->tables[0]), 1)
          .ok());
  doc = PollHealthUntil(&*prober, "degraded",
                        std::chrono::milliseconds(2 * 300), &reached);
  const double detect_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - stall_start)
          .count();
  ASSERT_TRUE(reached) << "stall not detected within 2x deadman";
  EXPECT_LE(detect_ms, 2.0 * 300.0);

  // Machine-readable cause: the dispatcher heartbeat tripped the
  // deadman, and the lag sample in the verdict exceeds it.
  const obs::JsonValue* reasons = doc.Get({"slo", "reasons"});
  ASSERT_NE(reasons, nullptr);
  bool saw_dispatcher_stall = false;
  for (const obs::JsonValue& reason : reasons->items()) {
    const obs::JsonValue* code = reason.Find("code");
    if (code != nullptr && code->AsString() == "dispatcher_stall") {
      saw_dispatcher_stall = true;
    }
  }
  EXPECT_TRUE(saw_dispatcher_stall) << "no dispatcher_stall reason";
  const obs::JsonValue* lag =
      doc.Get({"slo", "heartbeat_lag_us", "dispatcher"});
  ASSERT_NE(lag, nullptr);
  EXPECT_GT(lag->AsNumber(), 300.0 * 1000.0);

  // The batch finishes, the response arrives, beats resume, verdict
  // clears. Generous deadline: the sleep itself is 1.5s.
  StatusOr<net::EncodeResult> result = sender->ReadResponse();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  doc = PollHealthUntil(&*prober, "ok", std::chrono::milliseconds(10000),
                        &reached);
  EXPECT_TRUE(reached) << "verdict never recovered to ok";

  // The stats plane carries the additive window section end-to-end.
  StatusOr<std::string> stats_json = prober->Stats();
  ASSERT_TRUE(stats_json.ok());
  Result<obs::JsonValue> stats = obs::JsonParse(*stats_json);
  ASSERT_TRUE(stats.ok());
  ASSERT_NE(stats->Get({"window", "window_secs"}), nullptr);
  ASSERT_NE(stats->Get({"window", "histograms"}), nullptr);

  server.Stop();
}

TEST_F(WindowNetFixture, WatchdogDisabledServesLegacyHealth) {
  serve::BatchedEncoder encoder(model_, {});
  net::ServerOptions sopts;
  sopts.watchdog = false;
  net::Server server(&encoder, sopts);
  ASSERT_TRUE(server.Start().ok());
  StatusOr<net::Client> client =
      net::Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  StatusOr<std::string> health_json = client->Health();
  ASSERT_TRUE(health_json.ok());
  Result<obs::JsonValue> health = obs::JsonParse(*health_json);
  ASSERT_TRUE(health.ok());
  ASSERT_NE(health->Find("status"), nullptr);
  EXPECT_EQ(health->Find("status")->AsString(), "ok");
  EXPECT_EQ(health->Find("slo"), nullptr);

  StatusOr<std::string> stats_json = client->Stats();
  ASSERT_TRUE(stats_json.ok());
  Result<obs::JsonValue> stats = obs::JsonParse(*stats_json);
  ASSERT_TRUE(stats.ok());
  // The key stays (additive schema), but empty without the watchdog.
  const obs::JsonValue* window = stats->Find("window");
  ASSERT_NE(window, nullptr);
  EXPECT_TRUE(window->members().empty());
}

}  // namespace
}  // namespace tabrep
