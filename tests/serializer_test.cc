#include <gtest/gtest.h>

#include <tuple>

#include "serialize/serializer.h"
#include "serialize/vocab_builder.h"
#include "table/synth.h"

namespace tabrep {
namespace {

class SerializerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 40;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 2000;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
  }
  static void TearDownTestSuite() {
    delete tokenizer_;
    tokenizer_ = nullptr;
    delete corpus_;
    corpus_ = nullptr;
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
};

TableCorpus* SerializerFixture::corpus_ = nullptr;
WordPieceTokenizer* SerializerFixture::tokenizer_ = nullptr;

TEST_F(SerializerFixture, RowMajorStartsWithClsAndHasSeps) {
  TableSerializer ser(tokenizer_);
  Table t = MakeCountryDemoTable();
  TokenizedTable out = ser.Serialize(t);
  ASSERT_GT(out.size(), 0);
  EXPECT_EQ(out.tokens[0].id, SpecialTokens::kClsId);
  int seps = 0;
  for (const TokenInfo& tok : out.tokens) {
    if (tok.id == SpecialTokens::kSepId) ++seps;
  }
  // context sep + header sep + one per row.
  EXPECT_GE(seps, 2 + t.num_rows());
}

TEST_F(SerializerFixture, CellSpansCoverEveryCell) {
  TableSerializer ser(tokenizer_);
  Table t = MakeCountryDemoTable();
  TokenizedTable out = ser.Serialize(t);
  EXPECT_EQ(static_cast<int64_t>(out.cells.size()),
            t.num_rows() * t.num_columns());
  for (int32_t r = 0; r < t.num_rows(); ++r) {
    for (int32_t c = 0; c < t.num_columns(); ++c) {
      const CellSpan* span = out.FindCell(r, c);
      ASSERT_NE(span, nullptr) << "cell " << r << "," << c;
      EXPECT_LT(span->begin, span->end);
      // Every token in the span carries the right coordinates.
      for (int32_t i = span->begin; i < span->end; ++i) {
        EXPECT_EQ(out.tokens[i].row, r + 1);
        EXPECT_EQ(out.tokens[i].column, c + 1);
        EXPECT_EQ(out.tokens[i].kind, static_cast<int32_t>(TokenKind::kCell));
      }
    }
  }
}

TEST_F(SerializerFixture, HeaderTokensAreRowZero) {
  TableSerializer ser(tokenizer_);
  TokenizedTable out = ser.Serialize(MakeCountryDemoTable());
  bool saw_header = false;
  for (const TokenInfo& tok : out.tokens) {
    if (tok.kind == static_cast<int32_t>(TokenKind::kHeader)) {
      saw_header = true;
      EXPECT_EQ(tok.row, 0);
      EXPECT_GT(tok.column, 0);
      EXPECT_EQ(tok.segment, 1);
    }
  }
  EXPECT_TRUE(saw_header);
}

TEST_F(SerializerFixture, ContextBeforeVsAfterVsNone) {
  Table t = MakeCountryDemoTable();
  SerializerOptions before;
  before.context = ContextPlacement::kBefore;
  SerializerOptions after;
  after.context = ContextPlacement::kAfter;
  SerializerOptions none;
  none.context = ContextPlacement::kNone;

  TokenizedTable tb = TableSerializer(tokenizer_, before).Serialize(t);
  TokenizedTable ta = TableSerializer(tokenizer_, after).Serialize(t);
  TokenizedTable tn = TableSerializer(tokenizer_, none).Serialize(t);

  // Context tokens (segment 0, kind kContext) exist in before/after only.
  auto count_ctx = [](const TokenizedTable& tt) {
    int n = 0;
    for (const TokenInfo& tok : tt.tokens) {
      if (tok.kind == static_cast<int32_t>(TokenKind::kContext)) ++n;
    }
    return n;
  };
  EXPECT_GT(count_ctx(tb), 0);
  EXPECT_GT(count_ctx(ta), 0);
  EXPECT_EQ(count_ctx(tn), 0);
  // Before: first context token precedes first cell token; After: follows.
  auto first_of = [](const TokenizedTable& tt, TokenKind k) {
    for (size_t i = 0; i < tt.tokens.size(); ++i) {
      if (tt.tokens[i].kind == static_cast<int32_t>(k)) {
        return static_cast<int64_t>(i);
      }
    }
    return static_cast<int64_t>(-1);
  };
  EXPECT_LT(first_of(tb, TokenKind::kContext), first_of(tb, TokenKind::kCell));
  EXPECT_GT(first_of(ta, TokenKind::kContext), first_of(ta, TokenKind::kCell));
}

TEST_F(SerializerFixture, QuestionJoinsContext) {
  TableSerializer ser(tokenizer_);
  Table t = MakeCountryDemoTable();
  TokenizedTable without = ser.Serialize(t);
  TokenizedTable with = ser.Serialize(t, "what is the population of france");
  EXPECT_GT(with.size(), without.size());
}

TEST_F(SerializerFixture, NullCellsBecomeEmptyToken) {
  TableSerializer ser(tokenizer_);
  Table t = MakeAwardsDemoTable();
  TokenizedTable out = ser.Serialize(t);
  const CellSpan* span = out.FindCell(0, 3);  // Language of row 0 is NULL
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->end - span->begin, 1);
  EXPECT_EQ(out.tokens[span->begin].id, SpecialTokens::kEmptyId);
}

TEST_F(SerializerFixture, TruncationRespectsMaxTokens) {
  SerializerOptions opts;
  opts.max_tokens = 32;
  TableSerializer ser(tokenizer_, opts);
  // A big table from the corpus.
  TokenizedTable out = ser.Serialize(corpus_->tables[0]);
  EXPECT_LE(out.size(), 32);
  for (const CellSpan& s : out.cells) {
    EXPECT_LE(s.end, 32);
    EXPECT_LT(s.begin, s.end);
  }
}

TEST_F(SerializerFixture, RowColumnFiltering) {
  SerializerOptions opts;
  opts.max_rows = 2;
  opts.max_columns = 2;
  TableSerializer ser(tokenizer_, opts);
  TokenizedTable out = ser.Serialize(MakeCountryDemoTable());
  EXPECT_EQ(out.used_rows, 2);
  EXPECT_EQ(out.used_columns, 2);
  for (const CellSpan& s : out.cells) {
    EXPECT_LT(s.row, 2);
    EXPECT_LT(s.col, 2);
  }
}

TEST_F(SerializerFixture, NumericRanks) {
  Table t = MakeCountryDemoTable();  // Population column is numeric
  const int64_t pop = t.ColumnIndex("Population");
  auto ranks = NumericColumnRanks(t, pop);
  ASSERT_EQ(ranks.size(), static_cast<size_t>(t.num_rows()));
  // All distinct populations -> ranks are a permutation of 1..n.
  std::vector<int32_t> sorted = ranks;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<int32_t>(i) + 1);
  }
  // Text column gets all zeros.
  auto text_ranks = NumericColumnRanks(t, t.ColumnIndex("Country"));
  for (int32_t r : text_ranks) EXPECT_EQ(r, 0);
}

TEST_F(SerializerFixture, NumericRankTies) {
  Table t(std::vector<std::string>{"v"});
  ASSERT_TRUE(t.AppendRow({Value::Int(5)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int(3)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int(5)}).ok());
  auto ranks = NumericColumnRanks(t, 0);
  EXPECT_EQ(ranks[1], 1);
  EXPECT_EQ(ranks[0], 2);
  EXPECT_EQ(ranks[2], 2);
}

TEST_F(SerializerFixture, RankEmbeddingChannelOnCellTokens) {
  TableSerializer ser(tokenizer_);
  Table t = MakeCountryDemoTable();
  TokenizedTable out = ser.Serialize(t);
  const int64_t pop = t.ColumnIndex("Population");
  bool saw_rank = false;
  for (const TokenInfo& tok : out.tokens) {
    if (tok.column == pop + 1 &&
        tok.kind == static_cast<int32_t>(TokenKind::kCell)) {
      EXPECT_GT(tok.rank, 0);
      saw_rank = true;
    }
  }
  EXPECT_TRUE(saw_rank);
}

TEST_F(SerializerFixture, EntityIdsPropagate) {
  SyntheticCorpusOptions opts;
  opts.num_tables = 5;
  opts.numeric_table_fraction = 0.0;
  TableCorpus c = GenerateSyntheticCorpus(opts);
  TableSerializer ser(tokenizer_);
  bool saw_entity = false;
  for (const Table& t : c.tables) {
    TokenizedTable out = ser.Serialize(t);
    for (const CellSpan& s : out.cells) {
      if (s.entity_id >= 0) {
        saw_entity = true;
        for (int32_t i = s.begin; i < s.end; ++i) {
          EXPECT_EQ(out.tokens[i].entity_id, s.entity_id);
        }
      }
    }
  }
  EXPECT_TRUE(saw_entity);
}

TEST_F(SerializerFixture, LinearizeToStringTemplate) {
  SerializerOptions opts;
  opts.strategy = LinearizationStrategy::kTemplate;
  TableSerializer ser(tokenizer_, opts);
  std::string s = ser.LinearizeToString(MakeCountryDemoTable());
  EXPECT_NE(s.find("row 1 :"), std::string::npos);
  EXPECT_NE(s.find("Country is"), std::string::npos);
  EXPECT_NE(s.find("[CLS]"), std::string::npos);
}

TEST_F(SerializerFixture, HeaderlessTemplateFallsBackToColumnWords) {
  SerializerOptions opts;
  opts.strategy = LinearizationStrategy::kTemplate;
  TableSerializer ser(tokenizer_, opts);
  std::string s = ser.LinearizeToString(MakeCountryDemoTable().WithoutHeader());
  EXPECT_NE(s.find("column 1 is"), std::string::npos);
}

using StrategyParam = std::tuple<LinearizationStrategy, ContextPlacement>;

class StrategySweep : public SerializerFixture,
                      public ::testing::WithParamInterface<StrategyParam> {};

TEST_P(StrategySweep, EveryStrategyProducesValidOutput) {
  auto [strategy, context] = GetParam();
  SerializerOptions opts;
  opts.strategy = strategy;
  opts.context = context;
  TableSerializer ser(tokenizer_, opts);
  for (int i = 0; i < 5; ++i) {
    const Table& t = corpus_->tables[static_cast<size_t>(i)];
    TokenizedTable out = ser.Serialize(t);
    ASSERT_GT(out.size(), 0);
    EXPECT_EQ(out.tokens[0].id, SpecialTokens::kClsId);
    EXPECT_LE(out.size(), opts.max_tokens);
    // Cell spans exist unless everything was truncated away.
    EXPECT_FALSE(out.cells.empty());
    for (const CellSpan& s : out.cells) {
      EXPECT_GE(s.begin, 0);
      EXPECT_LT(s.begin, s.end);
      EXPECT_LE(s.end, out.size());
    }
    // No [UNK] should appear: vocab was trained on this corpus.
    for (const TokenInfo& tok : out.tokens) {
      EXPECT_NE(tok.id, SpecialTokens::kUnkId)
          << "UNK in table " << t.id() << " strategy "
          << LinearizationStrategyName(strategy);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategySweep,
    ::testing::Combine(
        ::testing::Values(LinearizationStrategy::kRowMajorSep,
                          LinearizationStrategy::kColumnMajorSep,
                          LinearizationStrategy::kTemplate,
                          LinearizationStrategy::kMarkdown),
        ::testing::Values(ContextPlacement::kNone, ContextPlacement::kBefore,
                          ContextPlacement::kAfter)));

}  // namespace
}  // namespace tabrep
