#include <gtest/gtest.h>

#include "pretrain/tapex.h"
#include "serialize/vocab_builder.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "table/synth.h"
#include "tasks/semantic_parsing.h"

namespace tabrep {
namespace {

class ParsingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 24;
    opts.max_rows = 6;
    opts.numeric_table_fraction = 0.2;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 1400;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    SerializerOptions sopts;
    sopts.max_tokens = 96;
    serializer_ = new TableSerializer(tokenizer_, sopts);
  }
  static void TearDownTestSuite() {
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static std::unique_ptr<TableEncoderModel> MakeModel() {
    ModelConfig config;
    config.family = ModelFamily::kTapas;
    config.vocab_size = tokenizer_->vocab().size();
    config.transformer.dim = 32;
    config.transformer.num_layers = 1;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 64;
    config.transformer.dropout = 0.0f;
    config.max_position = 160;
    return std::make_unique<TableEncoderModel>(config);
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
};

TableCorpus* ParsingFixture::corpus_ = nullptr;
WordPieceTokenizer* ParsingFixture::tokenizer_ = nullptr;
TableSerializer* ParsingFixture::serializer_ = nullptr;

TEST_F(ParsingFixture, GeneratedExamplesAreConsistent) {
  Rng rng(1);
  auto examples = GenerateParsingExamples(*corpus_, 3, rng);
  ASSERT_GT(examples.size(), 20u);
  for (const ParsingExample& ex : examples) {
    const Table& t = corpus_->tables[static_cast<size_t>(ex.table_index)];
    const sql::Query& q = ex.generated.query;
    // Single equality condition as promised.
    ASSERT_EQ(q.where.size(), 1u);
    EXPECT_EQ(q.where[0].op, sql::CompareOp::kEq);
    ASSERT_EQ(ex.generated.anchors.size(), 1u);
    // The anchor cell satisfies the condition.
    const auto [row, col] = ex.generated.anchors[0];
    EXPECT_TRUE(sql::MatchesCondition(t.cell(row, col), q.where[0].op,
                                      q.where[0].literal));
    // Executing reproduces the stored result.
    auto result = sql::Execute(q, t);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->values.size(), ex.generated.result.values.size());
  }
}

TEST_F(ParsingFixture, UntrainedParserEmitsValidQueries) {
  auto model = MakeModel();
  FineTuneConfig config;
  config.steps = 2;
  SemanticParsingTask task(model.get(), serializer_, config);
  const Table& t = corpus_->tables[0];
  bool ok = false;
  sql::Query q = task.Parse(t, "what is the capital when country is france",
                            &ok);
  ASSERT_TRUE(ok);
  // The assembled query must reference real columns and execute.
  EXPECT_GE(t.ColumnIndex(q.select_column), 0);
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_GE(t.ColumnIndex(q.where[0].column), 0);
  EXPECT_TRUE(sql::Execute(q, t).ok());
}

TEST_F(ParsingFixture, TrainingImprovesSlotAccuracy) {
  auto model = MakeModel();
  Rng rng(2);
  auto examples = GenerateParsingExamples(*corpus_, 3, rng);
  FineTuneConfig config;
  config.steps = 120;
  config.batch_size = 2;
  config.lr = 2e-3f;
  SemanticParsingTask task(model.get(), serializer_, config);
  ParsingEval before = task.Evaluate(*corpus_, examples);
  task.Train(*corpus_, examples);
  ParsingEval after = task.Evaluate(*corpus_, examples);
  ASSERT_GT(after.total, 0);
  // The easiest slots must improve over the untrained baseline.
  EXPECT_GT(after.aggregate_acc + after.select_acc,
            before.aggregate_acc + before.select_acc);
  // Denotation accuracy is at least exact-match (exact queries always
  // denote correctly).
  EXPECT_GE(after.denotation, after.exact_match);
}

TEST_F(ParsingFixture, TapexExamplesHaveUniqueAnswers) {
  Rng rng(3);
  auto examples = GenerateTapexExamples(*corpus_, 3, rng);
  ASSERT_GT(examples.size(), 15u);
  for (const TapexExample& ex : examples) {
    const Table& t = corpus_->tables[static_cast<size_t>(ex.table_index)];
    // The SQL text parses and executes to exactly the answer cell.
    auto q = sql::ParseQuery(ex.sql_text);
    ASSERT_TRUE(q.ok()) << ex.sql_text;
    auto r = sql::Execute(*q, t);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0], ex.answer_row);
    EXPECT_EQ(t.ColumnIndex(q->select_column), ex.answer_col);
  }
}

TEST_F(ParsingFixture, TapexTrainingLearnsExecution) {
  auto model = MakeModel();
  Rng rng(4);
  auto examples = GenerateTapexExamples(*corpus_, 4, rng);
  TapexConfig config;
  config.steps = 150;
  config.batch_size = 2;
  TapexTrainer trainer(model.get(), serializer_, config);
  double before = trainer.Evaluate(*corpus_, examples);
  trainer.Train(*corpus_, examples);
  double after = trainer.Evaluate(*corpus_, examples);
  EXPECT_GT(after, before) << "before " << before << " after " << after;
}

}  // namespace
}  // namespace tabrep
