// Tests for the model-introspection layer: attention capture
// (obs::CaptureScope), per-example evaluation records + error slicing
// (eval::ExampleLog / SliceByTag), and the bench-trajectory regression
// gate (obs::DiffBenchReports).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "eval/failure_analysis.h"
#include "obs/diff.h"
#include "obs/introspect.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "serialize/vocab_builder.h"
#include "table/synth.h"
#include "tasks/imputation.h"

namespace tabrep {
namespace {

/// Shared tiny-corpus fixture (vocab building is the slow part).
class IntrospectFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 30;
    opts.numeric_table_fraction = 0.2;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 1500;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    SerializerOptions sopts;
    sopts.max_tokens = 96;
    serializer_ = new TableSerializer(tokenizer_, sopts);
  }
  static void TearDownTestSuite() {
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static ModelConfig TinyConfig(int64_t layers = 2) {
    ModelConfig config;
    config.family = ModelFamily::kVanilla;
    config.vocab_size = tokenizer_->vocab().size();
    config.entity_vocab_size = corpus_->entities.size();
    config.transformer.dim = 32;
    config.transformer.num_layers = layers;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 64;
    config.transformer.dropout = 0.0f;
    config.max_position = 128;
    return config;
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
};

TableCorpus* IntrospectFixture::corpus_ = nullptr;
WordPieceTokenizer* IntrospectFixture::tokenizer_ = nullptr;
TableSerializer* IntrospectFixture::serializer_ = nullptr;

// ---------------------------------------------------------------------------
// Attention capture.

TEST_F(IntrospectFixture, DisabledCaptureRecordsNothing) {
  EXPECT_FALSE(obs::AttentionCaptureActive());
  obs::Counter& captures =
      obs::Registry::Get().counter("tabrep.obs.attention.captures");
  const uint64_t before = captures.value();

  TableEncoderModel model(TinyConfig());
  model.SetTraining(false);
  TokenizedTable serialized = serializer_->Serialize(MakeCountryDemoTable());
  Rng rng(7);
  model.Encode(serialized, rng, {.need_cells = false});

  EXPECT_EQ(captures.value(), before);
  EXPECT_FALSE(obs::AttentionCaptureActive());
}

TEST_F(IntrospectFixture, CapturesOneRecordPerLayerWithAllHeads) {
  TableEncoderModel model(TinyConfig(/*layers=*/2));
  model.SetTraining(false);
  TokenizedTable serialized = serializer_->Serialize(MakeCountryDemoTable());
  const int64_t t = serialized.size();

  obs::CaptureScope scope;
  EXPECT_TRUE(obs::AttentionCaptureActive());
  Rng rng(7);
  model.Encode(serialized, rng, {.need_cells = false});

  const std::vector<obs::AttentionRecord> records = scope.records();
  ASSERT_EQ(records.size(), 2u);  // one per encoder layer
  for (size_t layer = 0; layer < records.size(); ++layer) {
    const obs::AttentionRecord& rec = records[layer];
    EXPECT_EQ(rec.site, static_cast<int64_t>(layer));
    EXPECT_EQ(rec.seq_len, t);
    ASSERT_EQ(rec.heads.size(), 2u);
    for (const obs::AttentionMatrix& head : rec.heads) {
      EXPECT_EQ(head.rows, t);
      EXPECT_EQ(head.cols, t);
      ASSERT_EQ(head.weights.size(), static_cast<size_t>(t * t));
      // Each query row is a softmax distribution over key positions.
      for (int64_t q = 0; q < t; ++q) {
        double sum = 0.0;
        for (int64_t k = 0; k < t; ++k) sum += head.At(q, k);
        EXPECT_NEAR(sum, 1.0, 1e-4);
      }
    }
  }
}

TEST_F(IntrospectFixture, CaptureDoesNotChangeModelOutputs) {
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[0]);

  auto encode = [&](bool capture) {
    TableEncoderModel model(TinyConfig());
    model.SetTraining(false);
    Rng rng(11);
    if (capture) {
      obs::CaptureScope scope;
      models::Encoded enc = model.Encode(serialized, rng);
      EXPECT_GT(scope.size(), 0);
      return enc.hidden.value().Clone();
    }
    models::Encoded enc = model.Encode(serialized, rng);
    return enc.hidden.value().Clone();
  };

  Tensor off = encode(false);
  Tensor on = encode(true);
  ASSERT_EQ(off.numel(), on.numel());
  for (int64_t i = 0; i < off.numel(); ++i) {
    EXPECT_EQ(off[i], on[i]) << "bit drift at " << i;  // bitwise identical
  }
}

TEST_F(IntrospectFixture, CaptureIsDeterministicAcrossThreadCounts) {
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[0]);

  auto capture_all = [&](int num_threads) {
    runtime::Configure(runtime::RuntimeConfig{num_threads});
    TableEncoderModel model(TinyConfig());
    model.SetTraining(false);
    obs::CaptureScope scope;
    Rng rng(13);
    model.Encode(serialized, rng, {.need_cells = false});
    return scope.records();
  };

  const auto one = capture_all(1);
  const auto four = capture_all(4);
  runtime::Configure(runtime::RuntimeConfig{});  // back to auto

  ASSERT_EQ(one.size(), four.size());
  for (size_t r = 0; r < one.size(); ++r) {
    EXPECT_EQ(one[r].site, four[r].site);
    EXPECT_EQ(one[r].seq_len, four[r].seq_len);
    ASSERT_EQ(one[r].heads.size(), four[r].heads.size());
    for (size_t h = 0; h < one[r].heads.size(); ++h) {
      ASSERT_EQ(one[r].heads[h].weights.size(),
                four[r].heads[h].weights.size());
      for (size_t i = 0; i < one[r].heads[h].weights.size(); ++i) {
        EXPECT_EQ(one[r].heads[h].weights[i], four[r].heads[h].weights[i]);
      }
    }
  }
}

TEST_F(IntrospectFixture, TopKMatchesBruteForce) {
  TableEncoderModel model(TinyConfig());
  model.SetTraining(false);
  TokenizedTable serialized = serializer_->Serialize(MakeCountryDemoTable());
  obs::CaptureScope scope;
  Rng rng(17);
  model.Encode(serialized, rng, {.need_cells = false});
  ASSERT_GT(scope.size(), 0);

  const obs::AttentionRecord rec = scope.records()[0];
  const int64_t q = 2;
  const int64_t k = 5;
  // Brute force: average the heads' row q, take the k largest.
  std::vector<std::pair<double, int64_t>> scored;
  for (int64_t pos = 0; pos < rec.seq_len; ++pos) {
    double w = 0.0;
    for (const obs::AttentionMatrix& head : rec.heads) w += head.At(q, pos);
    scored.emplace_back(w / static_cast<double>(rec.heads.size()), pos);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  const std::vector<obs::AttentionEdge> edges = scope.TopK(0, q, k);
  ASSERT_EQ(edges.size(), static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    EXPECT_EQ(edges[static_cast<size_t>(i)].position,
              scored[static_cast<size_t>(i)].second);
    EXPECT_NEAR(edges[static_cast<size_t>(i)].weight,
                scored[static_cast<size_t>(i)].first, 1e-6);
  }
  // Out-of-range queries are empty, not UB.
  EXPECT_TRUE(scope.TopK(99, q, k).empty());
  EXPECT_TRUE(scope.TopK(0, rec.seq_len + 5, k).empty());
}

TEST_F(IntrospectFixture, TokenLabelsAndCellQuery) {
  TableEncoderModel model(TinyConfig());
  model.SetTraining(false);
  Table demo = MakeCountryDemoTable();
  TokenizedTable serialized = serializer_->Serialize(demo);
  obs::CaptureScope scope;
  Rng rng(19);
  model.Encode(serialized, rng, {.need_cells = false});

  scope.SetTokenLabels(eval::TokenLabels(serialized, *tokenizer_));
  const std::vector<obs::AttentionEdge> edges =
      eval::QueryCellAttention(scope, serialized, 0, 0, 4);
  ASSERT_FALSE(edges.empty());
  for (size_t i = 0; i < edges.size(); ++i) {
    EXPECT_FALSE(edges[i].token.empty());
    if (i > 0) {
      EXPECT_LE(edges[i].weight, edges[i - 1].weight);
    }
  }
  // A cell beyond the table is empty, not UB.
  EXPECT_TRUE(eval::QueryCellAttention(scope, serialized, 99, 99, 4).empty());
}

TEST_F(IntrospectFixture, CaptureJsonLintsAndParses) {
  TableEncoderModel model(TinyConfig(/*layers=*/1));
  model.SetTraining(false);
  TokenizedTable serialized = serializer_->Serialize(MakeCountryDemoTable());
  obs::CaptureScope scope;
  Rng rng(23);
  model.Encode(serialized, rng, {.need_cells = false});
  scope.SetTokenLabels(eval::TokenLabels(serialized, *tokenizer_));

  const std::string json = scope.ToJson();
  EXPECT_TRUE(obs::JsonLint(json));
  Result<obs::JsonValue> doc = obs::JsonParse(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* records = doc->Find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->items().size(), 1u);
  const obs::JsonValue& rec = records->items()[0];
  EXPECT_EQ(rec.Get({"seq_len"})->AsNumber(), serialized.size());
  EXPECT_EQ(rec.Get({"num_heads"})->AsNumber(), 2);
  EXPECT_EQ(rec.Get({"tokens"})->items().size(),
            static_cast<size_t>(serialized.size()));
}

// ---------------------------------------------------------------------------
// Per-example records and error slicing.

TEST_F(IntrospectFixture, FineTunerEmitsExampleRecords) {
  eval::ExampleLog log;
  TableEncoderModel model(TinyConfig());
  FineTuneConfig fconfig;
  fconfig.steps = 4;
  fconfig.batch_size = 2;
  fconfig.example_log = &log;
  ImputationOptions iopts;
  iopts.include_numeric_columns = true;
  ImputationTask task(&model, serializer_, fconfig, *corpus_, iopts);
  task.Train(*corpus_);
  const int64_t train_records = log.size();
  EXPECT_GT(train_records, 0);
  task.Evaluate(*corpus_, 10, CellCategory::kCategorical);
  EXPECT_GT(log.size(), train_records);

  for (const eval::ExampleRecord& rec : log.records()) {
    EXPECT_EQ(rec.task, "finetune.imputation");
    EXPECT_TRUE(rec.phase == "train" || rec.phase == "eval") << rec.phase;
    EXPECT_GE(rec.step, 0);
    EXPECT_FALSE(rec.example_id.empty());
    EXPECT_FALSE(rec.gold.empty());
    EXPECT_FALSE(rec.tags.empty());
  }

  // JSONL export is lint-clean, one object per line.
  const std::string jsonl = eval::ExampleRecordsJsonl(log.records());
  std::istringstream lines(jsonl);
  std::string line;
  int64_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(obs::JsonLint(line)) << line;
    ++n;
  }
  EXPECT_EQ(n, log.size());
}

TEST_F(IntrospectFixture, ExampleRecordsDeterministicAcrossThreadCounts) {
  auto run = [&](int num_threads) {
    runtime::Configure(runtime::RuntimeConfig{num_threads});
    eval::ExampleLog log;
    TableEncoderModel model(TinyConfig());
    FineTuneConfig fconfig;
    fconfig.steps = 3;
    fconfig.batch_size = 4;
    fconfig.example_log = &log;
    ImputationTask task(&model, serializer_, fconfig, *corpus_);
    task.Train(*corpus_);
    return log.records();
  };

  const auto one = run(1);
  const auto four = run(4);
  runtime::Configure(runtime::RuntimeConfig{});

  ASSERT_EQ(one.size(), four.size());
  ASSERT_GT(one.size(), 0u);
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].example_id, four[i].example_id);
    EXPECT_EQ(one[i].step, four[i].step);
    EXPECT_EQ(one[i].gold, four[i].gold);
    EXPECT_EQ(one[i].prediction, four[i].prediction);
    EXPECT_EQ(one[i].loss, four[i].loss);  // bitwise
    EXPECT_EQ(one[i].correct, four[i].correct);
  }
}

TEST(SliceByTagTest, GroupsByTagWithAllSlice) {
  std::vector<eval::ExampleRecord> records;
  auto add = [&](std::vector<std::string> tags, bool correct, float loss,
                 std::string phase = "eval") {
    eval::ExampleRecord r;
    r.phase = std::move(phase);
    r.tags = std::move(tags);
    r.correct = correct;
    r.loss = loss;
    records.push_back(std::move(r));
  };
  add({"domain:census", "cell:numeric"}, false, 2.0f);
  add({"domain:census", "cell:categorical"}, true, 1.0f);
  add({"domain:films", "cell:categorical"}, true, 0.5f);
  add({"domain:films"}, true, 0.5f, "train");  // filtered out

  const std::vector<eval::SliceStat> slices =
      eval::SliceByTag(records, "eval");
  ASSERT_GE(slices.size(), 4u);
  EXPECT_EQ(slices[0].tag, "all");
  EXPECT_EQ(slices[0].total, 3);
  EXPECT_EQ(slices[0].correct, 2);

  auto find = [&](const std::string& tag) -> const eval::SliceStat* {
    for (const eval::SliceStat& s : slices) {
      if (s.tag == tag) return &s;
    }
    return nullptr;
  };
  const eval::SliceStat* census = find("domain:census");
  ASSERT_NE(census, nullptr);
  EXPECT_EQ(census->total, 2);
  EXPECT_EQ(census->correct, 1);
  EXPECT_DOUBLE_EQ(census->accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(census->mean_loss(), 1.5);
  const eval::SliceStat* numeric = find("cell:numeric");
  ASSERT_NE(numeric, nullptr);
  EXPECT_EQ(numeric->total, 1);
  EXPECT_EQ(numeric->correct, 0);
  // The train-phase record was filtered out.
  const eval::SliceStat* films = find("domain:films");
  ASSERT_NE(films, nullptr);
  EXPECT_EQ(films->total, 1);

  const std::string table = eval::RenderSliceTable(slices);
  EXPECT_NE(table.find("all"), std::string::npos);
  EXPECT_NE(table.find("domain:census"), std::string::npos);
}

TEST(TableTagsTest, DerivesStructuralTags) {
  Table demo = MakeCountryDemoTable();
  const std::vector<std::string> tags = eval::TableTags(demo);
  EXPECT_NE(std::find(tags.begin(), tags.end(), "small_table"), tags.end());

  Table headerless = demo.WithoutHeader();
  headerless.set_title("");
  headerless.set_caption("");
  const std::vector<std::string> htags = eval::TableTags(headerless);
  EXPECT_NE(std::find(htags.begin(), htags.end(), "headerless"), htags.end());
  EXPECT_NE(std::find(htags.begin(), htags.end(), "no_context"), htags.end());
}

// ---------------------------------------------------------------------------
// Bench-trajectory regression gate.

namespace diffjson {

std::string Report(double counter, double p95, double total_ms) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"label\":\"t\",\"counters\":{\"tabrep.ops.matmul.calls\":%g},"
      "\"gauges\":{},"
      "\"histograms\":{\"tabrep.encode.us\":{\"count\":10,\"mean\":%g,"
      "\"p95\":%g}},"
      "\"profile\":[{\"name\":\"encode\",\"count\":10,\"total_ms\":%g,"
      "\"p95_ms\":%g}]}",
      counter, p95 * 0.8, p95, total_ms, total_ms / 10.0);
  return buf;
}

}  // namespace diffjson

TEST(BenchDiffTest, IdenticalReportsPass) {
  const std::string report = diffjson::Report(1000, 200, 80);
  Result<obs::BenchDiffReport> diff =
      obs::DiffBenchReports(report, report);
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_TRUE(diff->ok());
  EXPECT_EQ(diff->violations(), 0);
  EXPECT_TRUE(diff->unmatched.empty());
  const std::string rendered = obs::RenderBenchDiff(*diff);
  EXPECT_NE(rendered.find("0 violations"), std::string::npos);
}

TEST(BenchDiffTest, FlagsP95Regression) {
  // +50% p95 on a 200us histogram: over the 20% threshold, above the
  // 50us noise floor.
  Result<obs::BenchDiffReport> diff = obs::DiffBenchReports(
      diffjson::Report(1000, 200, 80), diffjson::Report(1000, 300, 80));
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->ok());
  bool found = false;
  for (const obs::BenchDiffLine& line : diff->lines) {
    if (line.kind == "hist.p95" && line.violation) {
      found = true;
      EXPECT_NEAR(line.change, 0.5, 1e-9);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(obs::RenderBenchDiff(*diff).find("FAIL"), std::string::npos);
}

TEST(BenchDiffTest, FlagsCounterRegression) {
  // Counters are deterministic: +2% gates even though every timing
  // threshold would tolerate it.
  Result<obs::BenchDiffReport> diff = obs::DiffBenchReports(
      diffjson::Report(1000, 200, 80), diffjson::Report(1020, 200, 80));
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->ok());
  bool found = false;
  for (const obs::BenchDiffLine& line : diff->lines) {
    if (line.kind == "counter" && line.violation) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(BenchDiffTest, NoiseFloorSuppressesTinyTimings) {
  // p95 triples but from 10us — below the 50us floor, never a gate.
  Result<obs::BenchDiffReport> diff = obs::DiffBenchReports(
      diffjson::Report(1000, 10, 0.02), diffjson::Report(1000, 30, 0.04));
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->ok()) << obs::RenderBenchDiff(*diff);
}

TEST(BenchDiffTest, ThresholdsAreConfigurable) {
  obs::BenchDiffOptions options;
  options.max_p95_regress = 0.60;  // +50% now tolerated
  Result<obs::BenchDiffReport> diff = obs::DiffBenchReports(
      diffjson::Report(1000, 200, 80), diffjson::Report(1000, 300, 80),
      options);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->ok());
}

TEST(BenchDiffTest, UnmatchedEntriesAreInformational) {
  const std::string old_report =
      "{\"label\":\"a\",\"counters\":{\"x\":1}}";
  const std::string new_report =
      "{\"label\":\"b\",\"counters\":{\"y\":1}}";
  Result<obs::BenchDiffReport> diff =
      obs::DiffBenchReports(old_report, new_report);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->ok());  // new/removed instruments never gate
  ASSERT_EQ(diff->unmatched.size(), 2u);
}

TEST(BenchDiffTest, MalformedInputIsCorruption) {
  Result<obs::BenchDiffReport> diff =
      obs::DiffBenchReports("{not json", diffjson::Report(1, 1, 1));
  EXPECT_FALSE(diff.ok());
  Result<obs::BenchDiffReport> diff2 =
      obs::DiffBenchReports("[1,2,3]", diffjson::Report(1, 1, 1));
  EXPECT_FALSE(diff2.ok());
}

}  // namespace
}  // namespace tabrep
