#include <gtest/gtest.h>

#include <set>

#include "table/csv.h"
#include "table/synth.h"
#include "table/table.h"
#include "table/value.h"

namespace tabrep {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToText(), "");
  EXPECT_EQ(v.ToNumber(), 0.0);
}

TEST(ValueTest, TypedFactories) {
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_TRUE(Value::Bool(true).AsBool());
}

TEST(ValueTest, EntityCarriesIdAndSurface) {
  Value v = Value::Entity("France", 42);
  EXPECT_TRUE(v.is_entity());
  EXPECT_EQ(v.entity_id(), 42);
  EXPECT_EQ(v.AsString(), "France");
  EXPECT_EQ(v.ToText(), "France");
}

TEST(ValueTest, ParseClassifies) {
  EXPECT_TRUE(Value::Parse("").is_null());
  EXPECT_TRUE(Value::Parse("null").is_null());
  EXPECT_TRUE(Value::Parse("N/A").is_null());
  EXPECT_EQ(Value::Parse("42").type(), ValueType::kInt);
  EXPECT_EQ(Value::Parse("-3.14").type(), ValueType::kDouble);
  EXPECT_EQ(Value::Parse("true").type(), ValueType::kBool);
  EXPECT_EQ(Value::Parse("Paris").type(), ValueType::kString);
  EXPECT_EQ(Value::Parse("  7 ").AsInt(), 7);
}

TEST(ValueTest, ToTextFormats) {
  EXPECT_EQ(Value::Int(-5).ToText(), "-5");
  EXPECT_EQ(Value::Double(25.69).ToText(), "25.69");
  EXPECT_EQ(Value::Double(3.0).ToText(), "3");
  EXPECT_EQ(Value::Bool(false).ToText(), "false");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_FALSE(Value::Int(1) == Value::Double(1.0));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_FALSE(Value::Entity("a", 1) == Value::Entity("a", 2));
}

TEST(TableTest, AppendRowChecksWidth) {
  Table t(std::vector<std::string>{"a", "b"});
  EXPECT_TRUE(t.AppendRow({Value::Int(1), Value::Int(2)}).ok());
  Status s = t.AppendRow({Value::Int(1)});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 1);
}

TEST(TableTest, CellAccessAndMutation) {
  Table t(std::vector<std::string>{"a"});
  ASSERT_TRUE(t.AppendRow({Value::Int(1)}).ok());
  t.set_cell(0, 0, Value::String("x"));
  EXPECT_EQ(t.cell(0, 0).AsString(), "x");
}

TEST(TableTest, ColumnIndexAndHeader) {
  Table t(std::vector<std::string>{"Country", "Capital"});
  EXPECT_EQ(t.ColumnIndex("Capital"), 1);
  EXPECT_EQ(t.ColumnIndex("zzz"), -1);
  EXPECT_TRUE(t.HasHeader());
  EXPECT_FALSE(t.WithoutHeader().HasHeader());
}

TEST(TableTest, InferTypesMixedColumns) {
  Table t(std::vector<std::string>{"name", "year", "score", "flag"});
  ASSERT_TRUE(t.AppendRow({Value::String("alpha"), Value::String("1967"),
                           Value::Double(1.5), Value::Bool(true)})
                  .ok());
  ASSERT_TRUE(t.AppendRow({Value::String("beta"), Value::String("1968-05-01"),
                           Value::Double(2.5), Value::Bool(false)})
                  .ok());
  t.InferTypes();
  EXPECT_EQ(t.column(0).type, ColumnType::kText);
  EXPECT_EQ(t.column(1).type, ColumnType::kDate);
  EXPECT_EQ(t.column(2).type, ColumnType::kNumeric);
  EXPECT_EQ(t.column(3).type, ColumnType::kBool);
}

TEST(TableTest, InferTypesEntityColumn) {
  Table t(std::vector<std::string>{"who"});
  ASSERT_TRUE(t.AppendRow({Value::Entity("France", 3)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Entity("Spain", 4)}).ok());
  t.InferTypes();
  EXPECT_EQ(t.column(0).type, ColumnType::kEntity);
}

TEST(TableTest, InferTypesAllNull) {
  Table t(std::vector<std::string>{"x"});
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  t.InferTypes();
  EXPECT_EQ(t.column(0).type, ColumnType::kUnknown);
}

TEST(TableTest, SlicePermuteProject) {
  Table t(std::vector<std::string>{"a", "b"});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int(i), Value::Int(10 * i)}).ok());
  }
  Table s = t.SliceRows(1, 3);
  EXPECT_EQ(s.num_rows(), 2);
  EXPECT_EQ(s.cell(0, 0).AsInt(), 1);

  Table p = t.PermuteRows({3, 2, 1, 0});
  EXPECT_EQ(p.cell(0, 0).AsInt(), 3);
  EXPECT_EQ(p.num_rows(), 4);

  Table proj = t.ProjectColumns({1});
  EXPECT_EQ(proj.num_columns(), 1);
  EXPECT_EQ(proj.column(0).name, "b");
  EXPECT_EQ(proj.cell(2, 0).AsInt(), 20);
}

TEST(TableTest, CountNulls) {
  Table t(std::vector<std::string>{"a", "b"});
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Int(1)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Null()}).ok());
  EXPECT_EQ(t.CountNulls(), 3);
}

TEST(DateDetectionTest, Patterns) {
  EXPECT_TRUE(LooksLikeDate("1967"));
  EXPECT_TRUE(LooksLikeDate("1967 (15th)"));
  EXPECT_TRUE(LooksLikeDate("1967-05-20"));
  EXPECT_TRUE(LooksLikeDate("05/20/1967"));
  EXPECT_FALSE(LooksLikeDate("France"));
  EXPECT_FALSE(LooksLikeDate("12a"));
  EXPECT_FALSE(LooksLikeDate(""));
}

TEST(CsvTest, ParseSimple) {
  auto r = ReadCsvString("a,b\n1,x\n2,y\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2);
  EXPECT_EQ(r->num_columns(), 2);
  EXPECT_EQ(r->column(0).name, "a");
  EXPECT_EQ(r->cell(0, 0).AsInt(), 1);
  EXPECT_EQ(r->cell(1, 1).AsString(), "y");
}

TEST(CsvTest, QuotedFieldsWithCommasAndNewlines) {
  auto r = ReadCsvString("name,notes\n\"Doe, Jane\",\"line1\nline2\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->cell(0, 0).AsString(), "Doe, Jane");
  EXPECT_EQ(r->cell(0, 1).AsString(), "line1\nline2");
}

TEST(CsvTest, EscapedQuotes) {
  auto r = ReadCsvString("q\n\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->cell(0, 0).AsString(), "say \"hi\"");
}

TEST(CsvTest, EmptyFieldsBecomeNull) {
  auto r = ReadCsvString("a,b\n,2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cell(0, 0).is_null());
}

TEST(CsvTest, InconsistentWidthFails) {
  auto r = ReadCsvString("a,b\n1\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, UnterminatedQuoteFails) {
  auto r = ReadCsvString("a\n\"oops\n");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, NoHeaderOption) {
  CsvOptions opts;
  opts.has_header = false;
  auto r = ReadCsvString("1,2\n3,4\n", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2);
  EXPECT_FALSE(r->HasHeader());
}

TEST(CsvTest, CrlfHandling) {
  auto r = ReadCsvString("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 1);
  EXPECT_EQ(r->cell(0, 1).AsInt(), 2);
}

TEST(CsvTest, MissingTrailingNewline) {
  auto r = ReadCsvString("a\n7");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 1);
  EXPECT_EQ(r->cell(0, 0).AsInt(), 7);
}

TEST(CsvTest, WriteReadRoundTrip) {
  Table t(std::vector<std::string>{"name", "pop"});
  ASSERT_TRUE(t.AppendRow({Value::String("Doe, Jane"), Value::Double(25.69)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Int(7)}).ok());
  std::string csv = WriteCsvString(t);
  auto r = ReadCsvString(csv);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->cell(0, 0).AsString(), "Doe, Jane");
  EXPECT_DOUBLE_EQ(r->cell(0, 1).AsDouble(), 25.69);
  EXPECT_TRUE(r->cell(1, 0).is_null());
}

TEST(CsvTest, FileRoundTrip) {
  Table t(std::vector<std::string>{"x"});
  ASSERT_TRUE(t.AppendRow({Value::Int(1)}).ok());
  const std::string path = ::testing::TempDir() + "/t.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto r = ReadCsvFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->cell(0, 0).AsInt(), 1);
}

TEST(EntityVocabTest, ReservedIds) {
  EntityVocab ev;
  EXPECT_EQ(ev.size(), 2);
  EXPECT_EQ(ev.Id("[ENT_UNK]"), EntityVocab::kEntUnkId);
  int32_t id = ev.Add("France");
  EXPECT_EQ(ev.Id("France"), id);
  EXPECT_EQ(ev.Add("France"), id);
  EXPECT_EQ(ev.Id("nowhere"), EntityVocab::kEntUnkId);
  EXPECT_EQ(ev.Surface(id), "France");
}

TEST(SynthTest, DeterministicForSeed) {
  SyntheticCorpusOptions opts;
  opts.num_tables = 10;
  TableCorpus a = GenerateSyntheticCorpus(opts);
  TableCorpus b = GenerateSyntheticCorpus(opts);
  ASSERT_EQ(a.size(), b.size());
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tables[i].ToString(100), b.tables[i].ToString(100));
  }
}

TEST(SynthTest, RowCountsInRange) {
  SyntheticCorpusOptions opts;
  opts.num_tables = 50;
  opts.min_rows = 3;
  opts.max_rows = 6;
  TableCorpus c = GenerateSyntheticCorpus(opts);
  for (const Table& t : c.tables) {
    EXPECT_GE(t.num_rows(), 3);
    EXPECT_LE(t.num_rows(), 6);
  }
}

TEST(SynthTest, EntityLinkingPopulatesVocab) {
  SyntheticCorpusOptions opts;
  opts.num_tables = 30;
  opts.numeric_table_fraction = 0.0;
  TableCorpus c = GenerateSyntheticCorpus(opts);
  EXPECT_GT(c.entities.size(), 20);
  bool found_entity_cell = false;
  for (const Table& t : c.tables) {
    for (int64_t r = 0; r < t.num_rows() && !found_entity_cell; ++r) {
      for (int64_t col = 0; col < t.num_columns(); ++col) {
        if (t.cell(r, col).is_entity()) {
          found_entity_cell = true;
          EXPECT_GT(t.cell(r, col).entity_id(), EntityVocab::kEntMaskId);
        }
      }
    }
  }
  EXPECT_TRUE(found_entity_cell);
}

TEST(SynthTest, FunctionalDependencyHolds) {
  // Capital must be a function of Country across the whole corpus.
  SyntheticCorpusOptions opts;
  opts.num_tables = 60;
  opts.numeric_table_fraction = 0.0;
  TableCorpus c = GenerateSyntheticCorpus(opts);
  std::map<std::string, std::string> capital_of;
  for (const Table& t : c.tables) {
    const int64_t country = t.ColumnIndex("Country");
    const int64_t capital = t.ColumnIndex("Capital");
    if (country < 0 || capital < 0) continue;
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      const std::string k = t.cell(r, country).ToText();
      const std::string v = t.cell(r, capital).ToText();
      auto [it, inserted] = capital_of.emplace(k, v);
      EXPECT_EQ(it->second, v) << "conflicting capital for " << k;
    }
  }
}

TEST(SynthTest, HeaderlessFraction) {
  SyntheticCorpusOptions opts;
  opts.num_tables = 100;
  opts.headerless_fraction = 1.0;
  TableCorpus c = GenerateSyntheticCorpus(opts);
  for (const Table& t : c.tables) EXPECT_FALSE(t.HasHeader());
}

TEST(SynthTest, NullInjection) {
  SyntheticCorpusOptions opts;
  opts.num_tables = 40;
  opts.null_fraction = 0.3;
  TableCorpus c = GenerateSyntheticCorpus(opts);
  int64_t nulls = 0, cells = 0;
  for (const Table& t : c.tables) {
    nulls += t.CountNulls();
    cells += t.num_rows() * t.num_columns();
  }
  const double rate = static_cast<double>(nulls) / cells;
  EXPECT_GT(rate, 0.2);
  EXPECT_LT(rate, 0.4);
}

TEST(SynthTest, NumericFractionProducesNumericTables) {
  SyntheticCorpusOptions opts;
  opts.num_tables = 50;
  opts.numeric_table_fraction = 1.0;
  TableCorpus c = GenerateSyntheticCorpus(opts);
  std::set<std::string> headers;
  for (const Table& t : c.tables) {
    for (const ColumnSpec& col : t.columns()) headers.insert(col.name);
  }
  EXPECT_TRUE(headers.count("age") || headers.count("temperature"));
}

TEST(SynthTest, CorpusSplit) {
  SyntheticCorpusOptions opts;
  opts.num_tables = 40;
  TableCorpus c = GenerateSyntheticCorpus(opts);
  Rng rng(1);
  auto [train, test] = c.Split(0.25, rng);
  EXPECT_EQ(train.size() + test.size(), c.size());
  EXPECT_EQ(test.size(), 10);
  EXPECT_EQ(train.entities.size(), c.entities.size());
}

TEST(SynthTest, DemoTablesShapedLikeThePaper) {
  Table country = MakeCountryDemoTable();
  EXPECT_EQ(country.ColumnIndex("Country"), 0);
  EXPECT_GE(country.num_rows(), 4);
  bool has_france = false;
  for (int64_t r = 0; r < country.num_rows(); ++r) {
    if (country.cell(r, 0).ToText() == "France") has_france = true;
  }
  EXPECT_TRUE(has_france);

  Table awards = MakeAwardsDemoTable();
  EXPECT_EQ(awards.num_columns(), 4);
  EXPECT_EQ(awards.CountNulls(), 3);

  Table census = MakeCensusDemoTable();
  EXPECT_EQ(census.ColumnIndex("income"), 4);
  EXPECT_EQ(census.CountNulls(), 3);
}

TEST(SynthTest, AllTextNonEmpty) {
  SyntheticCorpusOptions opts;
  opts.num_tables = 5;
  TableCorpus c = GenerateSyntheticCorpus(opts);
  auto text = c.AllText();
  EXPECT_GT(text.size(), 20u);
  for (const std::string& s : text) EXPECT_FALSE(s.empty());
}

}  // namespace
}  // namespace tabrep
