#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <iterator>

#include "runtime/runtime.h"
#include "tensor/io.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace tabrep {
namespace {

TEST(TensorTest, ZerosShapeAndContent) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::Of({1, 2, 3});
  Tensor shallow = a;
  Tensor deep = a.Clone();
  a[0] = 99;
  EXPECT_EQ(shallow[0], 99.0f);
  EXPECT_EQ(deep[0], 1.0f);
}

TEST(TensorTest, ReshapeSharesBuffer) {
  Tensor a = Tensor::Of({1, 2, 3, 4});
  Tensor b = a.Reshape({2, 2});
  b.at(1, 1) = 7;
  EXPECT_EQ(a[3], 7.0f);
}

TEST(TensorTest, FillAddScale) {
  Tensor a = Tensor::Zeros({4});
  a.Fill(2.0f);
  Tensor b = Tensor::Ones({4});
  a.Add(b, 3.0f);
  a.Scale(0.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(a[i], 2.5f);
}

TEST(TensorTest, NegativeAxisSize) {
  Tensor a = Tensor::Zeros({2, 5});
  EXPECT_EQ(a.size(-1), 5);
  EXPECT_EQ(a.size(-2), 2);
}

TEST(TensorTest, AllClose) {
  Tensor a = Tensor::Of({1.0f, 2.0f});
  Tensor b = Tensor::Of({1.0f, 2.0f + 1e-7f});
  Tensor c = Tensor::Of({1.0f, 2.1f});
  EXPECT_TRUE(a.AllClose(b));
  EXPECT_FALSE(a.AllClose(c));
  EXPECT_FALSE(a.AllClose(Tensor::Zeros({3})));
}

TEST(TensorTest, RandnStats) {
  Rng rng(5);
  Tensor t = Tensor::Randn({10000}, rng, 2.0f);
  double sum = 0, sq = 0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    sum += t[i];
    sq += t[i] * t[i];
  }
  EXPECT_NEAR(sum / t.numel(), 0.0, 0.1);
  EXPECT_NEAR(sq / t.numel(), 4.0, 0.2);
}

TEST(OpsTest, AddSubMul) {
  Tensor a = Tensor::Of({1, 2, 3});
  Tensor b = Tensor::Of({4, 5, 6});
  EXPECT_TRUE(ops::Add(a, b).AllClose(Tensor::Of({5, 7, 9})));
  EXPECT_TRUE(ops::Sub(b, a).AllClose(Tensor::Of({3, 3, 3})));
  EXPECT_TRUE(ops::Mul(a, b).AllClose(Tensor::Of({4, 10, 18})));
}

TEST(OpsTest, ScalarOps) {
  Tensor a = Tensor::Of({1, 2});
  EXPECT_TRUE(ops::AddScalar(a, 1).AllClose(Tensor::Of({2, 3})));
  EXPECT_TRUE(ops::MulScalar(a, -2).AllClose(Tensor::Of({-2, -4})));
}

TEST(OpsTest, AddRowBroadcast) {
  Tensor a = Tensor::FromVector({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor b = Tensor::Of({1, 2, 3});
  Tensor c = ops::AddRowBroadcast(a, b);
  EXPECT_TRUE(c.AllClose(Tensor::FromVector({2, 3}, {1, 2, 3, 2, 3, 4})));
}

TEST(OpsTest, MatMulKnown) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::MatMul(a, b);
  EXPECT_TRUE(c.AllClose(Tensor::FromVector({2, 2}, {58, 64, 139, 154})));
}

TEST(OpsTest, MatMulTransposedBMatchesExplicit) {
  Rng rng(1);
  Tensor a = Tensor::Randn({4, 6}, rng);
  Tensor b = Tensor::Randn({5, 6}, rng);
  Tensor direct = ops::MatMulTransposedB(a, b);
  Tensor viaT = ops::MatMul(a, ops::Transpose(b));
  EXPECT_TRUE(direct.AllClose(viaT, 1e-4f));
}

TEST(OpsTest, TransposeRoundTrip) {
  Rng rng(2);
  Tensor a = Tensor::Randn({3, 5}, rng);
  EXPECT_TRUE(ops::Transpose(ops::Transpose(a)).AllClose(a));
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 7}, rng, 3.0f);
  Tensor s = ops::Softmax(a);
  for (int64_t r = 0; r < 4; ++r) {
    float sum = 0;
    for (int64_t c = 0; c < 7; ++c) {
      EXPECT_GT(s.at(r, c), 0.0f);
      sum += s.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, SoftmaxStableForLargeLogits) {
  Tensor a = Tensor::Of({1000.0f, 1000.0f});
  Tensor s = ops::Softmax(a);
  EXPECT_NEAR(s[0], 0.5f, 1e-5f);
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(4);
  Tensor a = Tensor::Randn({2, 5}, rng);
  Tensor ls = ops::LogSoftmax(a);
  Tensor s = ops::Softmax(a);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(std::exp(ls[i]), s[i], 1e-5f);
  }
}

TEST(OpsTest, Reductions) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(ops::SumAll(a)[0], 10.0f);
  EXPECT_FLOAT_EQ(ops::MeanAll(a)[0], 2.5f);
  EXPECT_TRUE(ops::SumRows(a).AllClose(Tensor::Of({4, 6})));
  EXPECT_TRUE(ops::MeanRows(a).AllClose(Tensor::Of({2, 3})));
}

TEST(OpsTest, LayerNormNormalizes) {
  Rng rng(6);
  Tensor a = Tensor::Randn({3, 8}, rng, 5.0f);
  Tensor gamma = Tensor::Ones({8});
  Tensor beta = Tensor::Zeros({8});
  Tensor y = ops::LayerNorm(a, gamma, beta);
  for (int64_t r = 0; r < 3; ++r) {
    float mean = 0, var = 0;
    for (int64_t c = 0; c < 8; ++c) mean += y.at(r, c);
    mean /= 8;
    for (int64_t c = 0; c < 8; ++c) {
      var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(OpsTest, LayerNormAppliesGainBias) {
  Tensor a = Tensor::FromVector({1, 2}, {-1, 1});
  Tensor gamma = Tensor::Of({2, 2});
  Tensor beta = Tensor::Of({10, 10});
  Tensor y = ops::LayerNorm(a, gamma, beta);
  EXPECT_NEAR(y[0], 10 - 2.0f, 1e-3f);
  EXPECT_NEAR(y[1], 10 + 2.0f, 1e-3f);
}

TEST(OpsTest, EmbeddingLookup) {
  Tensor table = Tensor::FromVector({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor out = ops::EmbeddingLookup(table, {2, 0, 2});
  EXPECT_TRUE(
      out.AllClose(Tensor::FromVector({3, 2}, {20, 21, 0, 1, 20, 21})));
}

TEST(OpsTest, SliceAndConcatRows) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor mid = ops::SliceRows(a, 1, 2);
  EXPECT_TRUE(mid.AllClose(Tensor::FromVector({1, 2}, {3, 4})));
  Tensor cat = ops::ConcatRows({mid, mid});
  EXPECT_TRUE(cat.AllClose(Tensor::FromVector({2, 2}, {3, 4, 3, 4})));
}

TEST(OpsTest, ConcatCols) {
  Tensor a = Tensor::FromVector({2, 1}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = ops::ConcatCols({a, b});
  EXPECT_TRUE(c.AllClose(Tensor::FromVector({2, 3}, {1, 3, 4, 2, 5, 6})));
}

TEST(OpsTest, CrossEntropyPerfectPrediction) {
  // Very confident correct logits -> loss near 0, accuracy counted.
  Tensor logits = Tensor::FromVector({2, 3}, {10, -10, -10, -10, 10, -10});
  int64_t correct = 0, counted = 0;
  Tensor loss = ops::CrossEntropy(logits, {0, 1}, -100, &correct, &counted);
  EXPECT_LT(loss[0], 1e-3f);
  EXPECT_EQ(correct, 2);
  EXPECT_EQ(counted, 2);
}

TEST(OpsTest, CrossEntropyIgnoreIndex) {
  Tensor logits = Tensor::FromVector({2, 2}, {5, -5, -5, 5});
  int64_t correct = 0, counted = 0;
  Tensor loss = ops::CrossEntropy(logits, {-100, 1}, -100, &correct, &counted);
  EXPECT_EQ(counted, 1);
  EXPECT_EQ(correct, 1);
  EXPECT_LT(loss[0], 1e-3f);
}

TEST(OpsTest, CrossEntropyUniformIsLogC) {
  Tensor logits = Tensor::Zeros({1, 4});
  Tensor loss = ops::CrossEntropy(logits, {2});
  EXPECT_NEAR(loss[0], std::log(4.0f), 1e-5f);
}

TEST(OpsTest, ArgmaxRows) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 5, 2, 9, 0, 3});
  auto idx = ops::ArgmaxRows(a);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(OpsTest, DotCosineNorm) {
  Tensor a = Tensor::Of({3, 4});
  EXPECT_FLOAT_EQ(ops::Norm(a), 5.0f);
  Tensor b = Tensor::Of({3, 4});
  EXPECT_NEAR(ops::CosineSimilarity(a, b), 1.0f, 1e-6f);
  Tensor c = Tensor::Of({-4, 3});
  EXPECT_NEAR(ops::CosineSimilarity(a, c), 0.0f, 1e-6f);
  EXPECT_FLOAT_EQ(ops::Dot(a, b), 25.0f);
  EXPECT_EQ(ops::CosineSimilarity(a, Tensor::Zeros({2})), 0.0f);
}

TEST(OpsTest, Activations) {
  Tensor x = Tensor::Of({-2, 0, 2});
  Tensor r = ops::Relu(x);
  EXPECT_TRUE(r.AllClose(Tensor::Of({0, 0, 2})));
  Tensor t = ops::Tanh(x);
  EXPECT_NEAR(t[2], std::tanh(2.0f), 1e-6f);
  Tensor g = ops::Gelu(x);
  EXPECT_NEAR(g[1], 0.0f, 1e-6f);
  EXPECT_GT(g[2], 1.9f);  // gelu(2) ~ 1.954
  EXPECT_LT(g[0], 0.0f);  // gelu(-2) ~ -0.045
  Tensor s = ops::Sigmoid(x);
  EXPECT_NEAR(s[1], 0.5f, 1e-6f);
}

TEST(TensorIoTest, SaveLoadRoundTrip) {
  Rng rng(8);
  TensorMap m;
  m["a/weight"] = Tensor::Randn({3, 4}, rng);
  m["b"] = Tensor::Of({1, 2, 3});
  m["scalar"] = Tensor::Full({1}, 7.0f);
  const std::string path = ::testing::TempDir() + "/tensors.bin";
  ASSERT_TRUE(SaveTensors(m, path).ok());
  auto loaded = LoadTensors(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_TRUE(loaded->at("a/weight").AllClose(m["a/weight"]));
  EXPECT_TRUE(loaded->at("b").AllClose(m["b"]));
}

TEST(TensorIoTest, LoadMissingFileFails) {
  auto r = LoadTensors("/nonexistent/path/x.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(TensorIoTest, LoadCorruptFileFails) {
  const std::string path = ::testing::TempDir() + "/corrupt.bin";
  FILE* f = fopen(path.c_str(), "wb");
  fputs("NOTATENSORFILE", f);
  fclose(f);
  auto r = LoadTensors(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(TensorIoTest, TruncatedFileFails) {
  Rng rng(8);
  TensorMap m;
  m["w"] = Tensor::Randn({10, 10}, rng);
  const std::string path = ::testing::TempDir() + "/trunc.bin";
  ASSERT_TRUE(SaveTensors(m, path).ok());
  // Truncate to half size.
  FILE* f = fopen(path.c_str(), "rb");
  fseek(f, 0, SEEK_END);
  long size = ftell(f);
  fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  auto r = LoadTensors(path);
  EXPECT_FALSE(r.ok());
}

// -- Property tests: ops:: against the naive kernel references ----------
//
// Randomized shapes deliberately hit 1x1, prime dims, and k/n that are
// not multiples of the 6x16 register tile or the 8-lane vector width,
// so packing tails and edge kernels all get exercised through the
// public ops:: surface.

int64_t RandDim(Rng& rng) {
  static const int64_t kDims[] = {1, 2, 3, 5, 6, 7, 8, 11, 13, 16,
                                  17, 23, 31, 32, 33, 47, 64, 97};
  return kDims[static_cast<size_t>(
      rng.NextUniform(0.0f, static_cast<float>(std::size(kDims)) - 0.001f))];
}

TEST(TensorPropertyTest, MatMulMatchesNaiveOnRandomShapes) {
  Rng rng(1234);
  for (int iter = 0; iter < 25; ++iter) {
    const int64_t m = RandDim(rng), k = RandDim(rng), n = RandDim(rng);
    Tensor a = Tensor::Uniform({m, k}, rng, -2.0f, 2.0f);
    Tensor b = Tensor::Uniform({k, n}, rng, -2.0f, 2.0f);
    Tensor got = ops::MatMul(a, b);
    Tensor want({m, n});
    kernels::naive::MatMul(a.data(), b.data(), want.data(), m, k, n);
    ASSERT_TRUE(got.AllClose(want, 1e-3f))
        << m << "x" << k << "x" << n << ": " << got.ToString() << " vs "
        << want.ToString();
  }
}

TEST(TensorPropertyTest, MatMulTransposedBMatchesNaiveOnRandomShapes) {
  Rng rng(1235);
  for (int iter = 0; iter < 25; ++iter) {
    const int64_t m = RandDim(rng), k = RandDim(rng), n = RandDim(rng);
    Tensor a = Tensor::Uniform({m, k}, rng, -2.0f, 2.0f);
    Tensor b = Tensor::Uniform({n, k}, rng, -2.0f, 2.0f);
    Tensor got = ops::MatMulTransposedB(a, b);
    Tensor want({m, n});
    kernels::naive::MatMulTransposedB(a.data(), b.data(), want.data(), m, k,
                                      n);
    ASSERT_TRUE(got.AllClose(want, 1e-3f)) << m << "x" << k << "x" << n;
  }
}

TEST(TensorPropertyTest, TransposeRoundTripsOnRandomShapes) {
  Rng rng(1236);
  for (int iter = 0; iter < 25; ++iter) {
    const int64_t m = RandDim(rng), n = RandDim(rng);
    Tensor a = Tensor::Uniform({m, n}, rng, -2.0f, 2.0f);
    Tensor t = ops::Transpose(a);
    ASSERT_EQ(t.rows(), n);
    ASSERT_EQ(t.cols(), m);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) ASSERT_EQ(t.at(j, i), a.at(i, j));
    }
    ASSERT_TRUE(ops::Transpose(t).AllClose(a, 0.0f));
  }
}

TEST(TensorPropertyTest, NormalizationsMatchNaiveOnRandomShapes) {
  Rng rng(1237);
  for (int iter = 0; iter < 20; ++iter) {
    const int64_t rows = RandDim(rng), n = RandDim(rng);
    Tensor a = Tensor::Uniform({rows, n}, rng, -4.0f, 4.0f);
    Tensor gamma = Tensor::Uniform({n}, rng, 0.5f, 1.5f);
    Tensor beta = Tensor::Uniform({n}, rng, -0.5f, 0.5f);

    Tensor want = a.Clone();
    kernels::naive::SoftmaxRows(want.data(), rows, n);
    ASSERT_TRUE(ops::Softmax(a).AllClose(want, 1e-5f));

    want = a.Clone();
    kernels::naive::LogSoftmaxRows(want.data(), rows, n);
    ASSERT_TRUE(ops::LogSoftmax(a).AllClose(want, 1e-4f));

    want = a.Clone();
    kernels::naive::LayerNormRows(want.data(), gamma.data(), beta.data(),
                                  rows, n, 1e-5f);
    ASSERT_TRUE(ops::LayerNorm(a, gamma, beta).AllClose(want, 1e-4f));

    want = a.Clone();
    kernels::naive::Gelu(want.data(), a.data(), a.numel());
    ASSERT_TRUE(ops::Gelu(a).AllClose(want, 1e-5f));
  }
}

TEST(TensorPropertyTest, ScaledDotAttentionMatchesComposedOps) {
  Rng rng(1238);
  for (int iter = 0; iter < 10; ++iter) {
    const int64_t tq = RandDim(rng), tk = RandDim(rng);
    const int64_t dk = RandDim(rng), dv = RandDim(rng);
    Tensor q = Tensor::Uniform({tq, dk}, rng, -1.0f, 1.0f);
    Tensor k = Tensor::Uniform({tk, dk}, rng, -1.0f, 1.0f);
    Tensor v = Tensor::Uniform({tk, dv}, rng, -1.0f, 1.0f);
    Tensor bias = Tensor::Uniform({tq, tk}, rng, -1.0f, 0.0f);
    const float scale = 1.0f / std::sqrt(static_cast<float>(dk));

    Tensor probs;
    Tensor got = ops::ScaledDotAttention(q, k, v, &bias, scale, &probs);
    Tensor want_p({tq, tk});
    Tensor want({tq, dv});
    kernels::naive::FusedAttention(q.data(), k.data(), v.data(), bias.data(),
                                   scale, tq, tk, dk, dv, want.data(),
                                   want_p.data());
    ASSERT_TRUE(got.AllClose(want, 1e-4f));
    ASSERT_TRUE(probs.AllClose(want_p, 1e-5f));
  }
}

TEST(TensorPropertyTest, ScaledDotAttentionThreadCountInvariant) {
  Rng rng(1239);
  const int64_t tq = 37, tk = 29, dk = 24, dv = 40;
  Tensor q = Tensor::Uniform({tq, dk}, rng, -1.0f, 1.0f);
  Tensor k = Tensor::Uniform({tk, dk}, rng, -1.0f, 1.0f);
  Tensor v = Tensor::Uniform({tk, dv}, rng, -1.0f, 1.0f);
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  Tensor one, four, four_probs;
  runtime::Configure({1});
  one = ops::ScaledDotAttention(q, k, v, nullptr, scale);
  runtime::Configure({4});
  // Capture on at 4 threads vs capture off at 1 thread: the contract
  // says neither knob may move a single bit of the output.
  four = ops::ScaledDotAttention(q, k, v, nullptr, scale, &four_probs);
  runtime::Configure({});
  ASSERT_TRUE(one.SameShape(four));
  EXPECT_EQ(std::memcmp(one.data(), four.data(),
                        static_cast<size_t>(one.numel()) * sizeof(float)),
            0);
}

}  // namespace
}  // namespace tabrep
