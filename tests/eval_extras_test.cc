#include <gtest/gtest.h>

#include "eval/behavioral.h"
#include "eval/bm25.h"
#include "serialize/vocab_builder.h"
#include "table/synth.h"

namespace tabrep {
namespace {

TEST(Bm25Test, ExactTermMatchScoresHigher) {
  Bm25Index index;
  index.AddDocument("france paris population europe");
  index.AddDocument("japan tokyo population asia");
  index.AddDocument("films directors awards");
  EXPECT_GT(index.Score("paris france", 0), index.Score("paris france", 1));
  EXPECT_EQ(index.Score("paris france", 2), 0.0);
  auto ranked = index.Rank("paris france");
  EXPECT_EQ(ranked[0], 0);
}

TEST(Bm25Test, IdfDownweightsCommonTerms) {
  Bm25Index index;
  // "population" occurs everywhere; "tokyo" only in doc 1.
  index.AddDocument("population france");
  index.AddDocument("population tokyo");
  index.AddDocument("population berlin");
  // A query with the rare term must rank its doc first even though the
  // common term appears in all docs.
  auto ranked = index.Rank("population tokyo");
  EXPECT_EQ(ranked[0], 1);
}

TEST(Bm25Test, TopKLimitsResults) {
  Bm25Index index;
  for (int i = 0; i < 10; ++i) index.AddDocument("doc " + std::to_string(i));
  EXPECT_EQ(index.TopK("doc", 3).size(), 3u);
  EXPECT_EQ(index.Rank("doc").size(), 10u);
}

TEST(Bm25Test, EmptyQueryScoresZero) {
  Bm25Index index;
  index.AddDocument("something");
  EXPECT_EQ(index.Score("", 0), 0.0);
  EXPECT_EQ(index.Score("unknown words only", 0), 0.0);
}

TEST(Bm25Test, FromCorpusFindsTablesByContent) {
  SyntheticCorpusOptions opts;
  opts.num_tables = 30;
  opts.numeric_table_fraction = 0.0;
  TableCorpus corpus = GenerateSyntheticCorpus(opts);
  Bm25Index index = Bm25Index::FromCorpus(corpus);
  ASSERT_EQ(index.num_documents(), corpus.size());
  // Query with a distinctive cell value: the top table must contain it.
  auto ranked = index.TopK("satyajit ray chiriyakhana", 1);
  ASSERT_EQ(ranked.size(), 1u);
  const std::string text = TableToText(corpus.tables[ranked[0]]);
  EXPECT_NE(text.find("Satyajit Ray"), std::string::npos);
}

TEST(Bm25Test, TableToTextIncludesAllParts) {
  Table t = MakeCountryDemoTable();
  std::string text = TableToText(t);
  EXPECT_NE(text.find("Population in Million"), std::string::npos);  // title
  EXPECT_NE(text.find("Capital"), std::string::npos);                // header
  EXPECT_NE(text.find("France"), std::string::npos);                 // cell
}

class BehavioralFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 14;
    opts.max_rows = 5;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 1000;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    serializer_ = new TableSerializer(tokenizer_);
  }
  static void TearDownTestSuite() {
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
};

TableCorpus* BehavioralFixture::corpus_ = nullptr;
WordPieceTokenizer* BehavioralFixture::tokenizer_ = nullptr;
TableSerializer* BehavioralFixture::serializer_ = nullptr;

TEST_F(BehavioralFixture, SuiteRunsEveryProbe) {
  ModelConfig config;
  config.family = ModelFamily::kTapas;
  config.vocab_size = tokenizer_->vocab().size();
  config.transformer.dim = 32;
  config.transformer.num_layers = 1;
  config.transformer.num_heads = 2;
  config.transformer.ffn_dim = 64;
  config.transformer.dropout = 0.0f;
  TableEncoderModel model(config);

  auto results = RunBehavioralSuite(model, *serializer_, *corpus_);
  ASSERT_EQ(results.size(), 4u);
  for (const ProbeResult& r : results) {
    EXPECT_GT(r.tables, 0) << ProbeKindName(r.kind);
    EXPECT_GE(r.similarity, -1.0);
    EXPECT_LE(r.similarity, 1.0 + 1e-6);
  }
}

TEST_F(BehavioralFixture, ValueReplacementIsMoreDisruptiveThanPermutation) {
  ModelConfig config;
  config.family = ModelFamily::kTurl;
  config.vocab_size = tokenizer_->vocab().size();
  config.entity_vocab_size = corpus_->entities.size();
  config.transformer.dim = 32;
  config.transformer.num_layers = 1;
  config.transformer.num_heads = 2;
  config.transformer.ffn_dim = 64;
  config.transformer.dropout = 0.0f;
  TableEncoderModel model(config);

  ProbeResult perm = RunProbe(ProbeKind::kRowPermutation, model, *serializer_,
                              *corpus_);
  ProbeResult replace = RunProbe(ProbeKind::kValueReplacement, model,
                                 *serializer_, *corpus_);
  // Swapping a cell's value must move representations at least as much
  // as merely reordering rows.
  EXPECT_LE(replace.similarity, perm.similarity + 0.05);
}

TEST_F(BehavioralFixture, ProbeMetadata) {
  EXPECT_TRUE(ProbeExpectsInvariance(ProbeKind::kRowPermutation));
  EXPECT_TRUE(ProbeExpectsInvariance(ProbeKind::kSerializationSwap));
  EXPECT_FALSE(ProbeExpectsInvariance(ProbeKind::kHeaderRemoval));
  EXPECT_FALSE(ProbeExpectsInvariance(ProbeKind::kValueReplacement));
  EXPECT_EQ(ProbeKindName(ProbeKind::kHeaderRemoval), "header-removal");
}

TEST_F(BehavioralFixture, EvalModeRestored) {
  ModelConfig config;
  config.family = ModelFamily::kVanilla;
  config.vocab_size = tokenizer_->vocab().size();
  config.transformer.dim = 32;
  config.transformer.num_layers = 1;
  config.transformer.num_heads = 2;
  config.transformer.ffn_dim = 64;
  TableEncoderModel model(config);
  model.SetTraining(true);
  RunProbe(ProbeKind::kRowPermutation, model, *serializer_, *corpus_);
  EXPECT_TRUE(model.training());
  model.SetTraining(false);
  RunProbe(ProbeKind::kRowPermutation, model, *serializer_, *corpus_);
  EXPECT_FALSE(model.training());
}

}  // namespace
}  // namespace tabrep
