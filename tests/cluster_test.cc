#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "common/result.h"

#include "models/table_encoder.h"
#include "serialize/vocab_builder.h"
#include "serve/cluster.h"
#include "serve/serve.h"
#include "table/synth.h"
#include "tensor/io.h"

namespace tabrep {
namespace {

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

/// Shared tiny-corpus fixture (same shape as ServeFixture: building
/// the vocab once is the slow part).
class ClusterFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 30;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 1500;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    SerializerOptions sopts;
    sopts.max_tokens = 96;
    serializer_ = new TableSerializer(tokenizer_, sopts);
  }
  static void TearDownTestSuite() {
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static ModelConfig TinyConfig() {
    ModelConfig config;
    config.family = ModelFamily::kTabert;
    config.vocab_size = tokenizer_->vocab().size();
    config.entity_vocab_size = corpus_->entities.size();
    config.transformer.dim = 32;
    config.transformer.num_layers = 1;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 64;
    config.transformer.dropout = 0.0f;
    config.max_position = 128;
    return config;
  }

  static std::vector<TokenizedTable> Inputs(int64_t n) {
    std::vector<TokenizedTable> inputs;
    inputs.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      inputs.push_back(serializer_->Serialize(
          corpus_->tables[static_cast<size_t>(i) % corpus_->tables.size()]));
    }
    return inputs;
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
};

TableCorpus* ClusterFixture::corpus_ = nullptr;
WordPieceTokenizer* ClusterFixture::tokenizer_ = nullptr;
TableSerializer* ClusterFixture::serializer_ = nullptr;

TEST_F(ClusterFixture, ParityAcrossShardCountsIsBitwise) {
  ModelConfig config = TinyConfig();
  TableEncoderModel model(config);
  model.SetTraining(false);
  std::vector<TokenizedTable> inputs = Inputs(12);

  // Direct graph-free reference.
  models::EncodeOptions opts;
  opts.inference = true;
  std::vector<Tensor> reference;
  for (const TokenizedTable& in : inputs) {
    Rng rng(1);
    reference.push_back(model.Encode(in, rng, opts).hidden.value());
  }

  for (int64_t shards : {1, 2, 4}) {
    serve::ClusterOptions copts;
    copts.shards = shards;
    copts.steal_threshold = 0;
    serve::Cluster cluster(&model, copts);
    ASSERT_EQ(cluster.shard_count(), shards);
    for (size_t i = 0; i < inputs.size(); ++i) {
      StatusOr<serve::EncodedTablePtr> out = cluster.Encode(inputs[i]);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      EXPECT_TRUE(BitwiseEqual((*out)->hidden, reference[i]))
          << "table " << i << " with " << shards << " shards";
      EXPECT_EQ((*out)->weights_version, 1u);
    }
  }
}

TEST_F(ClusterFixture, AffinityRoutesRepeatsToTheSameWarmShard) {
  ModelConfig config = TinyConfig();
  TableEncoderModel model(config);
  model.SetTraining(false);
  std::vector<TokenizedTable> inputs = Inputs(12);

  serve::ClusterOptions copts;
  copts.shards = 4;
  copts.steal_threshold = 0;  // strict affinity
  copts.encoder.cache_capacity = 64;
  serve::Cluster cluster(&model, copts);

  // First pass fills exactly the home shards' caches...
  for (const TokenizedTable& in : inputs) {
    ASSERT_TRUE(cluster.Encode(in).ok());
  }
  std::vector<size_t> sizes_after_fill;
  size_t total = 0;
  for (int64_t s = 0; s < cluster.shard_count(); ++s) {
    sizes_after_fill.push_back(cluster.shard(s).cache().size());
    total += sizes_after_fill.back();
  }
  // Every distinct table is cached exactly once cluster-wide (no
  // replica holds a copy of another shard's working set).
  size_t distinct = 0;
  {
    std::vector<uint64_t> seen;
    for (const TokenizedTable& in : inputs) {
      const uint64_t h = serve::HashTokenizedTable(in);
      bool dup = false;
      for (uint64_t v : seen) dup = dup || v == h;
      if (!dup) seen.push_back(h);
    }
    distinct = seen.size();
  }
  EXPECT_EQ(total, distinct);

  // ...and repeats are pure hits: no cache grows.
  for (const TokenizedTable& in : inputs) {
    ASSERT_TRUE(cluster.Encode(in).ok());
  }
  for (int64_t s = 0; s < cluster.shard_count(); ++s) {
    EXPECT_EQ(cluster.shard(s).cache().size(),
              sizes_after_fill[static_cast<size_t>(s)])
        << "shard " << s << " cache grew on a repeat";
  }
  EXPECT_EQ(cluster.steal_count(), 0u);
  EXPECT_EQ(cluster.routed_count(), inputs.size() * 2);
}

TEST_F(ClusterFixture, SaturatedHomeShardStealsWithCorrectBytes) {
  ModelConfig config = TinyConfig();
  TableEncoderModel model(config);
  model.SetTraining(false);
  std::vector<TokenizedTable> inputs = Inputs(24);

  serve::ClusterOptions copts;
  copts.shards = 4;
  copts.steal_threshold = 1;
  copts.encoder.cache_capacity = 0;   // every request queues real work
  copts.encoder.max_batch = 1;
  copts.encoder.dispatch_delay_us = 2000;  // keep queues visibly deep
  serve::Cluster cluster(&model, copts);

  // Only tables homed on shard 0: with the home queue past the
  // threshold the router must redirect to other shards.
  std::vector<const TokenizedTable*> hot;
  for (const TokenizedTable& in : inputs) {
    if (cluster.HomeShard(in) == 0) hot.push_back(&in);
  }
  ASSERT_FALSE(hot.empty());

  models::EncodeOptions opts;
  opts.inference = true;
  std::vector<std::future<StatusOr<serve::EncodedTablePtr>>> futures;
  for (int round = 0; round < 6; ++round) {
    for (const TokenizedTable* in : hot) futures.push_back(cluster.Submit(*in));
  }
  size_t fi = 0;
  for (int round = 0; round < 6; ++round) {
    for (const TokenizedTable* in : hot) {
      StatusOr<serve::EncodedTablePtr> out = futures[fi++].get();
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      Rng rng(1);
      EXPECT_TRUE(BitwiseEqual((*out)->hidden,
                               model.Encode(*in, rng, opts).hidden.value()))
          << "stolen encode diverged";
    }
  }
  EXPECT_GT(cluster.steal_count(), 0u)
      << "skewed load never tripped the steal threshold";
  EXPECT_EQ(cluster.steal_count() + cluster.routed_count(),
            static_cast<uint64_t>(hot.size()) * 6);
}

TEST_F(ClusterFixture, PublishWeightsBumpsVersionAndSwapsOutputs) {
  ModelConfig config = TinyConfig();
  TableEncoderModel model(config);
  model.SetTraining(false);
  std::vector<TokenizedTable> inputs = Inputs(4);

  serve::ClusterOptions copts;
  copts.shards = 2;
  serve::Cluster cluster(&model, copts);
  EXPECT_EQ(cluster.weights_version(), 1u);

  StatusOr<serve::EncodedTablePtr> before = cluster.Encode(inputs[0]);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ((*before)->weights_version, 1u);

  // A genuinely different checkpoint: same shape, different init seed.
  ModelConfig other_config = config;
  other_config.seed = 99;
  TableEncoderModel other(other_config);
  other.SetTraining(false);
  StatusOr<uint64_t> v2 = cluster.PublishWeights(other.ExportStateDict());
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(*v2, 2u);
  EXPECT_EQ(cluster.weights_version(), 2u);

  StatusOr<serve::EncodedTablePtr> after = cluster.Encode(inputs[0]);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->weights_version, 2u);

  // New weights, new bytes — and they match the checkpoint's own
  // direct encode (the swap routed to a real import, not a no-op).
  models::EncodeOptions opts;
  opts.inference = true;
  Rng rng(1);
  EXPECT_TRUE(BitwiseEqual((*after)->hidden,
                           other.Encode(inputs[0], rng, opts).hidden.value()));
  EXPECT_FALSE(BitwiseEqual((*after)->hidden, (*before)->hidden));

  // Republishing the original weights bumps the version again; bytes
  // return to the original (version is identity metadata, not salt in
  // the math).
  StatusOr<uint64_t> v3 = cluster.PublishWeights(model.ExportStateDict());
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(*v3, 3u);
  StatusOr<serve::EncodedTablePtr> back = cluster.Encode(inputs[0]);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->weights_version, 3u);
  EXPECT_TRUE(BitwiseEqual((*back)->hidden, (*before)->hidden));
}

TEST_F(ClusterFixture, PublishWeightsIsFailAtomicOnBadCheckpoint) {
  ModelConfig config = TinyConfig();
  TableEncoderModel model(config);
  model.SetTraining(false);
  std::vector<TokenizedTable> inputs = Inputs(2);

  serve::ClusterOptions copts;
  copts.shards = 2;
  serve::Cluster cluster(&model, copts);
  StatusOr<serve::EncodedTablePtr> before = cluster.Encode(inputs[0]);
  ASSERT_TRUE(before.ok());

  // An incompatible checkpoint must be rejected with no shard touched.
  TensorMap bogus;
  StatusOr<uint64_t> rejected = cluster.PublishWeights(bogus);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(cluster.weights_version(), 1u);

  StatusOr<serve::EncodedTablePtr> after = cluster.Encode(inputs[0]);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->weights_version, 1u);
  EXPECT_TRUE(BitwiseEqual((*after)->hidden, (*before)->hidden));
}

TEST_F(ClusterFixture, ReloadUnderLoadNeverTearsOrDrops) {
  ModelConfig config = TinyConfig();
  TableEncoderModel model(config);
  model.SetTraining(false);
  std::vector<TokenizedTable> inputs = Inputs(8);

  serve::ClusterOptions copts;
  copts.shards = 2;
  copts.encoder.cache_capacity = 8;
  serve::Cluster cluster(&model, copts);

  // The publisher republishes the SAME weights: every version must
  // produce bitwise-identical bytes, so any torn read (half-old,
  // half-new state) or dropped request is observable.
  models::EncodeOptions opts;
  opts.inference = true;
  std::vector<Tensor> reference;
  for (const TokenizedTable& in : inputs) {
    Rng rng(1);
    reference.push_back(model.Encode(in, rng, opts).hidden.value());
  }
  const TensorMap checkpoint = model.ExportStateDict();
  constexpr int kPublishes = 5;
  constexpr int kRequests = 60;

  std::thread publisher([&] {
    for (int p = 0; p < kPublishes; ++p) {
      StatusOr<uint64_t> v = cluster.PublishWeights(checkpoint);
      EXPECT_TRUE(v.ok()) << v.status().ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  uint64_t last_version = 0;
  for (int r = 0; r < kRequests; ++r) {
    const size_t i = static_cast<size_t>(r) % inputs.size();
    StatusOr<serve::EncodedTablePtr> out = cluster.Encode(inputs[i]);
    ASSERT_TRUE(out.ok())
        << "request " << r << " dropped during reload: "
        << out.status().ToString();
    const uint64_t version = (*out)->weights_version;
    EXPECT_GE(version, 1u);
    EXPECT_LE(version, 1u + kPublishes);
    // Closed loop: each request admits after the previous response, so
    // the observed versions are non-decreasing.
    EXPECT_GE(version, last_version);
    last_version = version;
    EXPECT_TRUE(BitwiseEqual((*out)->hidden, reference[i]))
        << "torn response under version " << version;
  }
  publisher.join();
  EXPECT_EQ(cluster.weights_version(), 1u + kPublishes);
}

TEST_F(ClusterFixture, TopologyJsonReportsShardsAndVersion) {
  ModelConfig config = TinyConfig();
  TableEncoderModel model(config);
  model.SetTraining(false);

  serve::ClusterOptions copts;
  copts.shards = 3;
  copts.steal_threshold = 7;
  serve::Cluster cluster(&model, copts);
  const std::string json = cluster.TopologyJson();
  EXPECT_NE(json.find("\"shards\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"steal_threshold\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"weights_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard_depth\":[0,0,0]"), std::string::npos) << json;
}

}  // namespace
}  // namespace tabrep
