#include <gtest/gtest.h>

#include "serialize/vocab_builder.h"
#include "table/corruption.h"
#include "table/synth.h"
#include "tasks/entity_matching.h"

namespace tabrep {
namespace {

TEST(CorruptionTest, CorruptStringChangesText) {
  Rng rng(1);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    std::string out = CorruptString("United States", rng);
    if (out != "United States") ++changed;
    EXPECT_FALSE(out.empty());
  }
  EXPECT_GT(changed, 40);
}

TEST(CorruptionTest, ShortStringsSurvive) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(CorruptString("a", rng).empty());
    EXPECT_FALSE(CorruptString("ab", rng).empty());
  }
}

TEST(CorruptionTest, NumericJitterBounded) {
  Rng rng(3);
  CorruptionOptions opts;
  opts.numeric_jitter = 0.1;
  for (int i = 0; i < 100; ++i) {
    Value v = CorruptValue(Value::Double(100.0), rng, opts);
    EXPECT_GE(v.AsDouble(), 89.9);
    EXPECT_LE(v.AsDouble(), 110.1);
  }
}

TEST(CorruptionTest, EntityBecomesDirtyString) {
  Rng rng(4);
  Value v = CorruptValue(Value::Entity("France", 7), rng);
  EXPECT_EQ(v.type(), ValueType::kString);
}

TEST(CorruptionTest, NullAndBoolUnchanged) {
  Rng rng(5);
  EXPECT_TRUE(CorruptValue(Value::Null(), rng).is_null());
  EXPECT_TRUE(CorruptValue(Value::Bool(true), rng).AsBool());
}

TEST(CorruptionTest, CorruptRowAlwaysChangesSomething) {
  Rng rng(6);
  CorruptionOptions opts;
  opts.cell_prob = 0.0;  // rely on the at-least-one guarantee
  std::vector<Value> row{Value::String("alpha"), Value::String("beta")};
  for (int i = 0; i < 20; ++i) {
    auto out = CorruptRow(row, rng, opts);
    EXPECT_FALSE(out[0] == row[0] && out[1] == row[1]);
  }
}

class MatchingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 20;
    opts.max_rows = 6;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 1400;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    SerializerOptions sopts;
    sopts.max_tokens = 96;
    serializer_ = new TableSerializer(tokenizer_, sopts);
  }
  static void TearDownTestSuite() {
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
};

TableCorpus* MatchingFixture::corpus_ = nullptr;
WordPieceTokenizer* MatchingFixture::tokenizer_ = nullptr;
TableSerializer* MatchingFixture::serializer_ = nullptr;

TEST_F(MatchingFixture, GeneratedPairsBalancedAndConsistent) {
  Rng rng(7);
  auto examples = GenerateMatchingExamples(*corpus_, 6, rng);
  ASSERT_GT(examples.size(), 60u);
  int64_t positives = 0;
  for (const MatchingExample& ex : examples) {
    EXPECT_EQ(ex.left.size(), ex.headers.size());
    EXPECT_EQ(ex.right.size(), ex.headers.size());
    positives += ex.label;
  }
  const double frac =
      static_cast<double>(positives) / static_cast<double>(examples.size());
  EXPECT_GT(frac, 0.35);
  EXPECT_LT(frac, 0.65);
}

TEST_F(MatchingFixture, TrainingLearnsAboveChance) {
  ModelConfig config;
  config.family = ModelFamily::kTapas;
  config.vocab_size = tokenizer_->vocab().size();
  config.transformer.dim = 32;
  config.transformer.num_layers = 1;
  config.transformer.num_heads = 2;
  config.transformer.ffn_dim = 64;
  config.transformer.dropout = 0.0f;
  TableEncoderModel model(config);

  Rng rng(8);
  auto examples = GenerateMatchingExamples(*corpus_, 6, rng);
  FineTuneConfig fconfig;
  fconfig.steps = 120;
  fconfig.batch_size = 2;
  fconfig.lr = 2e-3f;
  EntityMatchingTask task(&model, serializer_, fconfig);
  task.Train(examples);
  ClassificationReport r = task.Evaluate(examples);
  EXPECT_GT(r.accuracy, 0.6) << "accuracy " << r.accuracy;
  // Match() agrees with Evaluate's argmax path.
  const int32_t m = task.Match(examples[0]);
  EXPECT_TRUE(m == 0 || m == 1);
}

}  // namespace
}  // namespace tabrep
