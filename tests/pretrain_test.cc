#include <gtest/gtest.h>

#include "pretrain/masking.h"
#include "pretrain/trainer.h"
#include "serialize/vocab_builder.h"
#include "table/synth.h"

namespace tabrep {
namespace {

class PretrainFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 24;
    opts.max_rows = 6;
    opts.numeric_table_fraction = 0.2;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 1200;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    SerializerOptions sopts;
    sopts.max_tokens = 72;
    serializer_ = new TableSerializer(tokenizer_, sopts);
  }
  static void TearDownTestSuite() {
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static ModelConfig TinyConfig(ModelFamily family) {
    ModelConfig config;
    config.family = family;
    config.vocab_size = tokenizer_->vocab().size();
    config.entity_vocab_size = corpus_->entities.size();
    config.transformer.dim = 32;
    config.transformer.num_layers = 1;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 64;
    config.transformer.dropout = 0.0f;
    config.max_position = 128;
    return config;
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
};

TableCorpus* PretrainFixture::corpus_ = nullptr;
WordPieceTokenizer* PretrainFixture::tokenizer_ = nullptr;
TableSerializer* PretrainFixture::serializer_ = nullptr;

TEST_F(PretrainFixture, MlmMaskingSelectsOnlyTableTokens) {
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[0]);
  MlmOptions opts;
  opts.mask_prob = 0.5;
  opts.vocab_size = tokenizer_->vocab().size();
  Rng rng(1);
  MlmExample ex = ApplyMlmMasking(serialized, opts, rng);
  EXPECT_GT(ex.num_masked, 0);
  ASSERT_EQ(ex.targets.size(), serialized.tokens.size());
  for (size_t i = 0; i < ex.targets.size(); ++i) {
    if (ex.targets[i] == kIgnoreTarget) continue;
    // A target implies the original token was a cell or header token.
    const int32_t kind = serialized.tokens[i].kind;
    EXPECT_TRUE(kind == static_cast<int32_t>(TokenKind::kCell) ||
                kind == static_cast<int32_t>(TokenKind::kHeader));
    // Target stores the original id.
    EXPECT_EQ(ex.targets[i], serialized.tokens[i].id);
  }
}

TEST_F(PretrainFixture, MlmWholeCellMasksFullSpans) {
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[1]);
  MlmOptions opts;
  opts.mask_prob = 0.5;
  opts.whole_cell = true;
  opts.replace_with_mask = 1.0;  // all selected become [MASK]
  opts.replace_with_random = 0.0;
  opts.vocab_size = tokenizer_->vocab().size();
  Rng rng(2);
  MlmExample ex = ApplyMlmMasking(serialized, opts, rng);
  // Every cell is either fully masked or fully intact.
  for (const CellSpan& span : serialized.cells) {
    bool any_masked = false, all_masked = true;
    for (int32_t i = span.begin; i < span.end; ++i) {
      const bool masked =
          ex.input.tokens[static_cast<size_t>(i)].id == SpecialTokens::kMaskId;
      any_masked |= masked;
      all_masked &= masked;
    }
    if (any_masked) {
      EXPECT_TRUE(all_masked);
    }
  }
}

TEST_F(PretrainFixture, MlmAlwaysMasksAtLeastOne) {
  MlmOptions opts;
  opts.mask_prob = 0.0;  // would select nothing without the guarantee
  opts.vocab_size = tokenizer_->vocab().size();
  Rng rng(3);
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[2]);
  MlmExample ex = ApplyMlmMasking(serialized, opts, rng);
  EXPECT_GE(ex.num_masked, 1);
}

TEST_F(PretrainFixture, MlmTokenLevelMasking) {
  MlmOptions opts;
  opts.mask_prob = 0.3;
  opts.whole_cell = false;
  opts.vocab_size = tokenizer_->vocab().size();
  Rng rng(4);
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[3]);
  MlmExample ex = ApplyMlmMasking(serialized, opts, rng);
  EXPECT_GT(ex.num_masked, 0);
}

TEST_F(PretrainFixture, MerMaskingTargetsEntities) {
  // Find an entity-rich table.
  const Table* entity_table = nullptr;
  for (const Table& t : corpus_->tables) {
    for (int64_t r = 0; r < t.num_rows() && !entity_table; ++r) {
      for (int64_t c = 0; c < t.num_columns(); ++c) {
        if (t.cell(r, c).is_entity()) {
          entity_table = &t;
          break;
        }
      }
    }
  }
  ASSERT_NE(entity_table, nullptr);
  TokenizedTable serialized = serializer_->Serialize(*entity_table);
  MerOptions opts;
  opts.mask_prob = 0.5;
  Rng rng(5);
  MerExample ex = ApplyMerMasking(serialized, opts, rng);
  EXPECT_GT(ex.num_masked, 0);
  for (size_t c = 0; c < ex.cell_targets.size(); ++c) {
    if (ex.cell_targets[c] == kIgnoreTarget) continue;
    // Original entity id preserved as target; input masked.
    EXPECT_EQ(ex.cell_targets[c], serialized.cells[c].entity_id);
    EXPECT_EQ(ex.input.cells[c].entity_id, EntityVocab::kEntMaskId);
    for (int32_t i = ex.input.cells[c].begin; i < ex.input.cells[c].end; ++i) {
      EXPECT_EQ(ex.input.tokens[static_cast<size_t>(i)].id,
                SpecialTokens::kMaskId);
    }
  }
}

TEST_F(PretrainFixture, MerOnTableWithoutEntitiesMasksNothing) {
  Table t = MakeCensusDemoTable();  // no linked entities
  TokenizedTable serialized = serializer_->Serialize(t);
  MerOptions opts;
  Rng rng(6);
  MerExample ex = ApplyMerMasking(serialized, opts, rng);
  EXPECT_EQ(ex.num_masked, 0);
}

TEST_F(PretrainFixture, MlmLossDecreasesDuringPretraining) {
  ModelConfig config = TinyConfig(ModelFamily::kTapas);
  TableEncoderModel model(config);
  PretrainConfig pconfig;
  pconfig.steps = 80;
  pconfig.batch_size = 2;
  pconfig.peak_lr = 3e-3f;
  pconfig.warmup_steps = 5;
  PretrainTrainer trainer(&model, serializer_, pconfig);
  auto log = trainer.Train(*corpus_);
  ASSERT_EQ(log.size(), 80u);
  // Average of first 5 vs last 5 steps.
  float head = 0, tail = 0;
  for (int i = 0; i < 5; ++i) {
    head += log[static_cast<size_t>(i)].mlm_loss;
    tail += log[log.size() - 1 - static_cast<size_t>(i)].mlm_loss;
  }
  EXPECT_LT(tail, head * 0.9f) << "head avg " << head / 5 << " tail avg "
                               << tail / 5;
}

TEST_F(PretrainFixture, TurlMerTrainsAndEvaluates) {
  ModelConfig config = TinyConfig(ModelFamily::kTurl);
  TableEncoderModel model(config);
  PretrainConfig pconfig;
  pconfig.steps = 30;
  pconfig.batch_size = 2;
  pconfig.use_mer = true;
  pconfig.peak_lr = 2e-3f;
  pconfig.warmup_steps = 5;
  PretrainTrainer trainer(&model, serializer_, pconfig);
  auto log = trainer.Train(*corpus_);
  // MER was exercised at least once.
  bool mer_seen = false;
  for (const auto& e : log) mer_seen |= e.mer_loss > 0.0f;
  EXPECT_TRUE(mer_seen);
  PretrainEval eval = trainer.Evaluate(*corpus_, 8);
  EXPECT_GT(eval.mlm_perplexity, 0.0f);
}

TEST_F(PretrainFixture, EvaluateIsDeterministic) {
  ModelConfig config = TinyConfig(ModelFamily::kVanilla);
  TableEncoderModel model(config);
  PretrainConfig pconfig;
  pconfig.steps = 2;
  PretrainTrainer trainer(&model, serializer_, pconfig);
  trainer.Train(*corpus_);
  PretrainEval a = trainer.Evaluate(*corpus_, 6);
  PretrainEval b = trainer.Evaluate(*corpus_, 6);
  EXPECT_FLOAT_EQ(a.mlm_loss, b.mlm_loss);
  EXPECT_FLOAT_EQ(a.mlm_accuracy, b.mlm_accuracy);
}

TEST_F(PretrainFixture, PretrainingBeatsRandomInitOnHeldoutMlm) {
  // The central Fig. 2c claim in miniature: a pretrained model has
  // lower held-out masked-prediction loss than a random-init one.
  Rng split_rng(9);
  auto [train, test] = corpus_->Split(0.25, split_rng);

  ModelConfig config = TinyConfig(ModelFamily::kTapas);
  TableEncoderModel pretrained(config);
  PretrainConfig pconfig;
  pconfig.steps = 60;
  pconfig.batch_size = 2;
  pconfig.peak_lr = 2e-3f;
  pconfig.warmup_steps = 5;
  PretrainTrainer trainer(&pretrained, serializer_, pconfig);
  trainer.Train(train);
  PretrainEval pre_eval = trainer.Evaluate(test, 16);

  config.seed = 77;
  TableEncoderModel random_model(config);
  PretrainConfig zero = pconfig;
  zero.steps = 0;
  PretrainTrainer untrained(&random_model, serializer_, zero);
  PretrainEval rand_eval = untrained.Evaluate(test, 16);

  EXPECT_LT(pre_eval.mlm_loss, rand_eval.mlm_loss);
}

}  // namespace
}  // namespace tabrep
