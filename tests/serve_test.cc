#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "common/result.h"

#include "models/table_encoder.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "serialize/vocab_builder.h"
#include "serve/cluster.h"
#include "serve/serve.h"
#include "table/synth.h"
#include "tensor/autograd.h"

namespace tabrep {
namespace {

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

/// Shared tiny-corpus fixture (same shape as ModelsFixture: building
/// the vocab once is the slow part).
class ServeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 30;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 1500;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    SerializerOptions sopts;
    sopts.max_tokens = 96;
    serializer_ = new TableSerializer(tokenizer_, sopts);
  }
  static void TearDownTestSuite() {
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static ModelConfig TinyConfig(ModelFamily family) {
    ModelConfig config;
    config.family = family;
    config.vocab_size = tokenizer_->vocab().size();
    config.entity_vocab_size = corpus_->entities.size();
    config.transformer.dim = 32;
    config.transformer.num_layers = 1;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 64;
    config.transformer.dropout = 0.0f;
    config.max_position = 128;
    return config;
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
};

TableCorpus* ServeFixture::corpus_ = nullptr;
WordPieceTokenizer* ServeFixture::tokenizer_ = nullptr;
TableSerializer* ServeFixture::serializer_ = nullptr;

/// Restores the default (env-resolved) pool on scope exit so thread
/// sweeps don't leak a pinned count into later tests.
struct ThreadCountGuard {
  ~ThreadCountGuard() { runtime::Configure({0}); }
};

class ServeFamilySweep : public ServeFixture,
                         public ::testing::WithParamInterface<ModelFamily> {};

TEST_P(ServeFamilySweep, InferenceEncodeIsBitwiseIdenticalToGraph) {
  ModelConfig config = TinyConfig(GetParam());
  TableEncoderModel model(config);
  model.SetTraining(false);
  ThreadCountGuard guard;
  for (int threads : {1, 4}) {
    runtime::Configure({threads});
    for (bool capture : {false, true}) {
      for (int ti : {0, 3, 7}) {
        TokenizedTable serialized =
            serializer_->Serialize(corpus_->tables[static_cast<size_t>(ti)]);
        models::EncodeOptions opts;
        opts.need_cells = true;
        opts.capture_attention = capture;
        Rng rng_g(1), rng_f(1);
        models::Encoded g = model.Encode(serialized, rng_g, opts);
        models::EncodeOptions iopts = opts;
        iopts.inference = true;
        models::Encoded f = model.Encode(serialized, rng_f, iopts);
        EXPECT_TRUE(BitwiseEqual(g.hidden.value(), f.hidden.value()))
            << "hidden, table " << ti << " threads " << threads
            << " capture " << capture;
        ASSERT_EQ(g.has_cells, f.has_cells);
        if (g.has_cells) {
          EXPECT_TRUE(BitwiseEqual(g.cells.value(), f.cells.value()))
              << "cells, table " << ti << " threads " << threads;
        }
        ASSERT_EQ(g.attention.size(), f.attention.size());
        for (size_t l = 0; l < g.attention.size(); ++l) {
          EXPECT_TRUE(BitwiseEqual(g.attention[l], f.attention[l]))
              << "attention layer " << l << " threads " << threads;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ServeFamilySweep,
    ::testing::Values(ModelFamily::kVanilla, ModelFamily::kTapas,
                      ModelFamily::kTabert, ModelFamily::kTurl,
                      ModelFamily::kMate),
    [](const ::testing::TestParamInfo<ModelFamily>& info) {
      return std::string(ModelFamilyName(info.param));
    });

TEST_F(ServeFixture, NoGradScopeSwitchesEncodeToInference) {
  ModelConfig config = TinyConfig(ModelFamily::kVanilla);
  TableEncoderModel model(config);
  model.SetTraining(false);
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[0]);
  obs::Counter& infer = obs::Registry::Get().counter(
      "tabrep.models.encode.infer");
  obs::Counter& graph = obs::Registry::Get().counter(
      "tabrep.models.encode.graph");
  Rng rng(1);

  const uint64_t graph_before = graph.value();
  models::Encoded g = model.Encode(serialized, rng);
  EXPECT_EQ(graph.value(), graph_before + 1);

  const uint64_t infer_before = infer.value();
  models::Encoded f = [&] {
    ag::NoGradScope no_grad;
    return model.Encode(serialized, rng);
  }();
  EXPECT_EQ(infer.value(), infer_before + 1);
  EXPECT_TRUE(BitwiseEqual(g.hidden.value(), f.hidden.value()));
  // The graph-free result is a constant: backward has nothing to reach.
  EXPECT_FALSE(f.hidden.requires_grad());
}

TEST_F(ServeFixture, HashIsStableAndDiscriminating) {
  TokenizedTable a = serializer_->Serialize(corpus_->tables[0]);
  TokenizedTable b = serializer_->Serialize(corpus_->tables[1]);
  EXPECT_EQ(serve::HashTokenizedTable(a), serve::HashTokenizedTable(a));
  EXPECT_NE(serve::HashTokenizedTable(a), serve::HashTokenizedTable(b));
  // Any field Encode reads must perturb the hash.
  TokenizedTable mutated = a;
  mutated.tokens[1].row += 1;
  EXPECT_NE(serve::HashTokenizedTable(a), serve::HashTokenizedTable(mutated));
}

TEST(EncodeCacheTest, LruEvictionIsDeterministic) {
  serve::EncodeCache cache(2);
  auto entry = [] { return std::make_shared<serve::EncodedTable>(); };
  serve::EncodedTablePtr e1 = entry(), e2 = entry(), e3 = entry();
  cache.Put(1, e1);
  cache.Put(2, e2);
  EXPECT_EQ(cache.Get(1), e1);  // promote 1 -> 2 is now LRU
  cache.Put(3, e3);             // evicts 2
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_EQ(cache.Get(1), e1);
  EXPECT_EQ(cache.Get(3), e3);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(EncodeCacheTest, CapacityZeroDisablesCaching) {
  serve::EncodeCache cache(0);
  cache.Put(1, std::make_shared<serve::EncodedTable>());
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(ServeFixture, BatchedEncoderMatchesDirectEncodeAndCaches) {
  ModelConfig config = TinyConfig(ModelFamily::kTabert);
  TableEncoderModel model(config);
  model.SetTraining(false);
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[2]);
  Rng rng(1);
  models::EncodeOptions opts;
  opts.need_cells = true;
  opts.inference = true;
  models::Encoded direct = model.Encode(serialized, rng, opts);

  serve::BatchedEncoderOptions sopts;
  sopts.cache_capacity = 8;
  sopts.need_cells = true;
  serve::BatchedEncoder encoder(&model, sopts);
  StatusOr<serve::EncodedTablePtr> first_or = encoder.Encode(serialized);
  ASSERT_TRUE(first_or.ok()) << first_or.status().ToString();
  serve::EncodedTablePtr first = *first_or;
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(BitwiseEqual(first->hidden, direct.hidden.value()));
  ASSERT_TRUE(first->has_cells);
  EXPECT_TRUE(BitwiseEqual(first->cells, direct.cells.value()));
  // Second request is a cache hit: the very same shared encoding.
  StatusOr<serve::EncodedTablePtr> second = encoder.Encode(serialized);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, first);
  EXPECT_EQ(encoder.cache().size(), 1u);
}

// The dispatcher encodes inside ParallelFor lanes, where nested
// ParallelFor calls degrade to inline execution. Inline execution must
// replay the pooled path's chunk boundaries (kernels round differently
// at chunk edges), or served encodings diverge from direct ones.
TEST_F(ServeFixture, EncodeInsideParallelForLaneIsBitwiseIdentical) {
  ModelConfig config = TinyConfig(ModelFamily::kVanilla);
  TableEncoderModel model(config);
  model.SetTraining(false);
  for (int ti : {0, 1, 2, 3, 4, 5}) {
    TokenizedTable in = serializer_->Serialize(corpus_->tables[
        static_cast<size_t>(ti)]);
    models::EncodeOptions opts;
    opts.need_cells = false;
    opts.inference = true;
    Rng rng(1);
    Tensor direct = model.Encode(in, rng, opts).hidden.value();
    Tensor nested;
    runtime::ParallelFor(0, 1, 1, [&](int64_t, int64_t) {
      Rng rng2(1);
      nested = model.Encode(in, rng2, opts).hidden.value();
    });
    EXPECT_TRUE(BitwiseEqual(direct, nested)) << "table " << ti;
  }
}

TEST_F(ServeFixture, BatchedEncoderConcurrentClients) {
  ModelConfig config = TinyConfig(ModelFamily::kVanilla);
  TableEncoderModel model(config);
  model.SetTraining(false);

  std::vector<TokenizedTable> inputs;
  for (int i = 0; i < 6; ++i) {
    inputs.push_back(serializer_->Serialize(corpus_->tables[
        static_cast<size_t>(i)]));
  }
  std::vector<Tensor> expected;
  for (const TokenizedTable& in : inputs) {
    Rng rng(1);
    models::EncodeOptions opts;
    opts.need_cells = false;
    opts.inference = true;
    expected.push_back(model.Encode(in, rng, opts).hidden.value());
  }

  serve::BatchedEncoderOptions sopts;
  sopts.max_batch = 4;
  sopts.cache_capacity = 64;
  serve::BatchedEncoder encoder(&model, sopts);

  // Every client requests every table several times; concurrent
  // requests for the same table coalesce onto one encode.
  const int num_clients = 4;
  const int rounds = 3;
  std::vector<std::thread> clients;
  std::vector<int> failures(static_cast<size_t>(num_clients), 0);
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < rounds; ++r) {
        for (size_t i = 0; i < inputs.size(); ++i) {
          StatusOr<serve::EncodedTablePtr> out = encoder.Encode(inputs[i]);
          if (!out.ok() || *out == nullptr ||
              !BitwiseEqual((*out)->hidden, expected[i])) {
            ++failures[static_cast<size_t>(c)];
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int f : failures) EXPECT_EQ(f, 0);
  EXPECT_EQ(encoder.cache().size(), inputs.size());
}

TEST_F(ServeFixture, BatchedEncoderDrainsOnDestruction) {
  ModelConfig config = TinyConfig(ModelFamily::kVanilla);
  TableEncoderModel model(config);
  std::vector<TokenizedTable> inputs;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(serializer_->Serialize(corpus_->tables[
        static_cast<size_t>(10 + i)]));
  }
  std::vector<serve::EncodedTablePtr> results(inputs.size());
  {
    serve::BatchedEncoder encoder(&model, {});
    std::vector<std::thread> clients;
    for (size_t i = 0; i < inputs.size(); ++i) {
      clients.emplace_back(
          [&, i] { results[i] = encoder.Encode(inputs[i]).value_or(nullptr); });
    }
    for (std::thread& t : clients) t.join();
  }  // destructor joins the dispatcher after every request completed
  for (const serve::EncodedTablePtr& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_GT(r->hidden.numel(), 0);
  }
}

TEST_F(ServeFixture, SubmitIsAsyncAndCopiesTheInput) {
  ModelConfig config = TinyConfig(ModelFamily::kVanilla);
  TableEncoderModel model(config);
  model.SetTraining(false);
  TokenizedTable serialized = serializer_->Serialize(corpus_->tables[0]);
  Rng rng(1);
  models::EncodeOptions opts;
  opts.need_cells = false;
  opts.inference = true;
  Tensor expected = model.Encode(serialized, rng, opts).hidden.value();

  serve::BatchedEncoder encoder(&model, {});
  std::future<StatusOr<serve::EncodedTablePtr>> future = [&] {
    // The input dies before the future resolves: Submit must have
    // copied it (the documented ISSUE-6 lifetime change).
    TokenizedTable doomed = serialized;
    return encoder.Submit(doomed);
  }();
  StatusOr<serve::EncodedTablePtr> out = future.get();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(BitwiseEqual((*out)->hidden, expected));
}

TEST_F(ServeFixture, SubmitShedsWithTypedOverloadedWhenQueueIsFull) {
  ModelConfig config = TinyConfig(ModelFamily::kVanilla);
  TableEncoderModel model(config);
  model.SetTraining(false);

  serve::BatchedEncoderOptions sopts;
  sopts.max_batch = 1;
  sopts.max_wait_us = 0;
  sopts.cache_capacity = 0;  // every request is fresh work
  sopts.max_queue = 1;
  sopts.dispatch_delay_us = 100000;  // hold the dispatcher: queue backs up
  serve::BatchedEncoder encoder(&model, sopts);

  std::vector<std::future<StatusOr<serve::EncodedTablePtr>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(encoder.Submit(
        serializer_->Serialize(corpus_->tables[static_cast<size_t>(i)])));
  }
  int ok = 0, overloaded = 0;
  for (auto& f : futures) {
    StatusOr<serve::EncodedTablePtr> out = f.get();
    if (out.ok()) {
      ++ok;
      EXPECT_NE(*out, nullptr);
    } else {
      EXPECT_EQ(out.status().code(), StatusCode::kOverloaded);
      ++overloaded;
    }
  }
  // 8 submitted against queue bound 1 and a 100ms-per-batch dispatcher:
  // at least one admitted, and the burst cannot all fit.
  EXPECT_EQ(ok + overloaded, 8);  // zero silent drops
  EXPECT_GE(ok, 1);
  EXPECT_GE(overloaded, 5);
}

TEST(ServeOptionsTest, OptionsFromEnvReadsEveryTunable) {
  setenv("TABREP_SERVE_MAX_BATCH", "3", 1);
  setenv("TABREP_SERVE_MAX_WAIT_US", "77", 1);
  setenv("TABREP_ENCODE_CACHE", "11", 1);
  setenv("TABREP_SERVE_MAX_QUEUE", "5", 1);
  serve::BatchedEncoderOptions options = serve::OptionsFromEnv();
  EXPECT_EQ(options.max_batch, 3);
  EXPECT_EQ(options.max_wait_us, 77);
  EXPECT_EQ(options.cache_capacity, 11);
  EXPECT_EQ(options.max_queue, 5);
  unsetenv("TABREP_SERVE_MAX_BATCH");
  unsetenv("TABREP_SERVE_MAX_WAIT_US");
  unsetenv("TABREP_ENCODE_CACHE");
  unsetenv("TABREP_SERVE_MAX_QUEUE");
  serve::BatchedEncoderOptions defaults = serve::OptionsFromEnv();
  EXPECT_EQ(defaults.max_batch, serve::BatchedEncoderOptions{}.max_batch);
  EXPECT_EQ(defaults.cache_capacity, 256);  // the documented default
}

TEST(ServeOptionsTest, ClusterOptionsFromEnvRoundTrips) {
  setenv("TABREP_SHARDS", "4", 1);
  setenv("TABREP_STEAL_THRESHOLD", "13", 1);
  setenv("TABREP_ENCODE_CACHE", "9", 1);  // nested encoder options too
  serve::ClusterOptions options = serve::ClusterOptionsFromEnv();
  EXPECT_EQ(options.shards, 4);
  EXPECT_EQ(options.steal_threshold, 13);
  EXPECT_EQ(options.encoder.cache_capacity, 9);
  unsetenv("TABREP_SHARDS");
  unsetenv("TABREP_STEAL_THRESHOLD");
  unsetenv("TABREP_ENCODE_CACHE");
  serve::ClusterOptions defaults = serve::ClusterOptionsFromEnv();
  EXPECT_EQ(defaults.shards, serve::ClusterOptions{}.shards);
  EXPECT_EQ(defaults.steal_threshold,
            serve::ClusterOptions{}.steal_threshold);
}

TEST(ServeOptionsTest, EnvInt64FallsBackOnGarbage) {
  setenv("TABREP_TEST_TUNABLE", "not-a-number", 1);
  EXPECT_EQ(serve::EnvInt64("TABREP_TEST_TUNABLE", 42), 42);
  setenv("TABREP_TEST_TUNABLE", "-7", 1);
  EXPECT_EQ(serve::EnvInt64("TABREP_TEST_TUNABLE", 42), -7);
  unsetenv("TABREP_TEST_TUNABLE");
  EXPECT_EQ(serve::EnvInt64("TABREP_TEST_TUNABLE", 42), 42);
}

}  // namespace
}  // namespace tabrep
