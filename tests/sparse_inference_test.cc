#include <gtest/gtest.h>

#include "models/visibility.h"
#include "nn/attention.h"
#include "nn/sparse_inference.h"
#include "serialize/vocab_builder.h"
#include "table/synth.h"

namespace tabrep {
namespace {

Tensor DiagonalBias(int64_t t) {
  Tensor bias = Tensor::Full({t, t}, nn::kMaskedScore);
  for (int64_t i = 0; i < t; ++i) bias.at(i, i) = 0.0f;
  return bias;
}

TEST(SparseInferenceTest, MatchesDenseWithFullVisibility) {
  Rng rng(1);
  const int64_t t = 12, d = 8;
  Tensor q = Tensor::Randn({t, d}, rng);
  Tensor k = Tensor::Randn({t, d}, rng);
  Tensor v = Tensor::Randn({t, d}, rng);
  Tensor none = Tensor::Zeros({t, t});
  Tensor dense = nn::DenseAttentionForward(q, k, v, nullptr);
  Tensor sparse = nn::SparseAttentionForward(q, k, v, none);
  EXPECT_TRUE(dense.AllClose(sparse, 1e-4f));
}

TEST(SparseInferenceTest, MatchesDenseWithRandomMask) {
  Rng rng(2);
  const int64_t t = 16, d = 8;
  Tensor q = Tensor::Randn({t, d}, rng);
  Tensor k = Tensor::Randn({t, d}, rng);
  Tensor v = Tensor::Randn({t, d}, rng);
  Tensor bias({t, t});
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t j = 0; j < t; ++j) {
      bias.at(i, j) = (i == j || rng.NextBernoulli(0.4)) ? 0.0f
                                                          : nn::kMaskedScore;
    }
  }
  Tensor dense = nn::DenseAttentionForward(q, k, v, &bias);
  Tensor sparse = nn::SparseAttentionForward(q, k, v, bias);
  EXPECT_TRUE(dense.AllClose(sparse, 1e-4f));
}

TEST(SparseInferenceTest, DiagonalMaskCopiesValues) {
  Rng rng(3);
  const int64_t t = 6, d = 4;
  Tensor q = Tensor::Randn({t, d}, rng);
  Tensor k = Tensor::Randn({t, d}, rng);
  Tensor v = Tensor::Randn({t, d}, rng);
  Tensor out = nn::SparseAttentionForward(q, k, v, DiagonalBias(t));
  // Softmax over a single visible element is 1 -> output == v.
  EXPECT_TRUE(out.AllClose(v, 1e-5f));
}

TEST(SparseInferenceTest, CountVisiblePairs) {
  EXPECT_EQ(nn::CountVisiblePairs(Tensor::Zeros({3, 3})), 9);
  EXPECT_EQ(nn::CountVisiblePairs(DiagonalBias(5)), 5);
}

TEST(SparseInferenceTest, MatchesDenseOnRealVisibilityMatrices) {
  SyntheticCorpusOptions copts;
  copts.num_tables = 3;
  TableCorpus corpus = GenerateSyntheticCorpus(copts);
  WordPieceTrainerOptions vopts;
  vopts.vocab_size = 800;
  WordPieceTokenizer tokenizer = BuildCorpusTokenizer(corpus, vopts);
  TableSerializer serializer(&tokenizer);
  Rng rng(4);
  for (const Table& table : corpus.tables) {
    TokenizedTable serialized = serializer.Serialize(table);
    const int64_t t = serialized.size();
    Tensor q = Tensor::Randn({t, 16}, rng);
    Tensor k = Tensor::Randn({t, 16}, rng);
    Tensor v = Tensor::Randn({t, 16}, rng);
    Tensor turl = BuildTurlVisibility(serialized);
    EXPECT_TRUE(nn::DenseAttentionForward(q, k, v, &turl)
                    .AllClose(nn::SparseAttentionForward(q, k, v, turl),
                              1e-3f));
    for (const Tensor& head : BuildMateBiases(serialized, 2)) {
      EXPECT_TRUE(nn::DenseAttentionForward(q, k, v, &head)
                      .AllClose(nn::SparseAttentionForward(q, k, v, head),
                                1e-3f));
    }
  }
}

}  // namespace
}  // namespace tabrep
