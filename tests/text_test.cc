#include <gtest/gtest.h>

#include "text/basic_tokenizer.h"
#include "text/vocab.h"
#include "text/wordpiece.h"

namespace tabrep {
namespace {

TEST(VocabTest, SpecialsAtFixedIds) {
  Vocab v = Vocab::NewWithSpecials();
  EXPECT_EQ(v.Id("[PAD]"), SpecialTokens::kPadId);
  EXPECT_EQ(v.Id("[UNK]"), SpecialTokens::kUnkId);
  EXPECT_EQ(v.Id("[CLS]"), SpecialTokens::kClsId);
  EXPECT_EQ(v.Id("[SEP]"), SpecialTokens::kSepId);
  EXPECT_EQ(v.Id("[MASK]"), SpecialTokens::kMaskId);
  EXPECT_EQ(v.Id("[EMPTY]"), SpecialTokens::kEmptyId);
  EXPECT_EQ(v.size(), 6);
}

TEST(VocabTest, AddIsIdempotent) {
  Vocab v = Vocab::NewWithSpecials();
  int32_t a = v.AddToken("hello");
  int32_t b = v.AddToken("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.size(), 7);
}

TEST(VocabTest, UnknownMapsToUnk) {
  Vocab v = Vocab::NewWithSpecials();
  EXPECT_EQ(v.Id("zzz"), SpecialTokens::kUnkId);
  EXPECT_FALSE(v.Contains("zzz"));
}

TEST(VocabTest, IsSpecial) {
  Vocab v = Vocab::NewWithSpecials();
  v.AddToken("word");
  EXPECT_TRUE(v.IsSpecial(SpecialTokens::kMaskId));
  EXPECT_FALSE(v.IsSpecial(6));
}

TEST(VocabTest, SaveLoadRoundTrip) {
  Vocab v = Vocab::NewWithSpecials();
  v.AddToken("alpha");
  v.AddToken("##beta");
  const std::string path = ::testing::TempDir() + "/vocab.txt";
  ASSERT_TRUE(v.Save(path).ok());
  auto loaded = Vocab::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), v.size());
  EXPECT_EQ(loaded->Id("##beta"), v.Id("##beta"));
  EXPECT_TRUE(loaded->IsSpecial(SpecialTokens::kPadId));
}

TEST(BasicTokenizerTest, LowercasesAndSplits) {
  BasicTokenizer t;
  auto toks = t.Tokenize("Hello World");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "hello");
  EXPECT_EQ(toks[1], "world");
}

TEST(BasicTokenizerTest, SplitsPunctuation) {
  BasicTokenizer t;
  auto toks = t.Tokenize("a,b.c");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[1], ",");
  EXPECT_EQ(toks[3], ".");
}

TEST(BasicTokenizerTest, CasePreservingOption) {
  BasicTokenizerOptions opts;
  opts.lowercase = false;
  BasicTokenizer t(opts);
  EXPECT_EQ(t.Tokenize("Paris")[0], "Paris");
}

TEST(BasicTokenizerTest, DigitSplittingOption) {
  BasicTokenizerOptions opts;
  opts.split_digits = true;
  BasicTokenizer t(opts);
  auto toks = t.Tokenize("1967");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], "1");
}

TEST(BasicTokenizerTest, EmptyAndWhitespaceOnly) {
  BasicTokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("   \t\n").empty());
}

class WordPieceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    WordPieceTrainerOptions opts;
    opts.vocab_size = 200;
    WordPieceTrainer trainer(opts);
    // A tiny corpus with repeated morphology so merges happen.
    for (int i = 0; i < 10; ++i) {
      trainer.AddDocument("playing played player plays play");
      trainer.AddDocument("walking walked walker walks walk");
      trainer.AddDocument("the cat sat on the mat");
      trainer.AddDocument("paris france berlin germany");
    }
    vocab_ = trainer.Train();
    tokenizer_ = std::make_unique<WordPieceTokenizer>(vocab_);
  }

  Vocab vocab_;
  std::unique_ptr<WordPieceTokenizer> tokenizer_;
};

TEST_F(WordPieceFixture, KnownWordSegmentsWithoutUnk) {
  auto ids = tokenizer_->Encode("playing");
  ASSERT_FALSE(ids.empty());
  for (int32_t id : ids) EXPECT_NE(id, SpecialTokens::kUnkId);
}

TEST_F(WordPieceFixture, LearnsWholeFrequentWords) {
  // "play" occurs 50 times across forms; it should be one token or few.
  auto ids = tokenizer_->Encode("play");
  EXPECT_LE(ids.size(), 2u);
}

TEST_F(WordPieceFixture, ContinuationPiecesHaveHashes) {
  auto pieces = tokenizer_->TokenizeToStrings("played");
  ASSERT_GE(pieces.size(), 1u);
  for (size_t i = 1; i < pieces.size(); ++i) {
    EXPECT_EQ(pieces[i].substr(0, 2), "##") << pieces[i];
  }
  EXPECT_NE(pieces[0].substr(0, 2), "##");
}

TEST_F(WordPieceFixture, UnknownAlphabetMapsToUnk) {
  auto ids = tokenizer_->EncodeWord("\xc3\xa9t\xc3\xa9");  // été, non-ASCII
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], SpecialTokens::kUnkId);
}

TEST_F(WordPieceFixture, NovelCombinationOfKnownCharsSegments) {
  // "catwalk" never seen, but chars are in-alphabet.
  auto ids = tokenizer_->Encode("catwalk");
  ASSERT_FALSE(ids.empty());
  for (int32_t id : ids) EXPECT_NE(id, SpecialTokens::kUnkId);
}

TEST_F(WordPieceFixture, DecodeInvertsSingleWords) {
  EXPECT_EQ(tokenizer_->Decode(tokenizer_->Encode("walking")), "walking");
  EXPECT_EQ(tokenizer_->Decode(tokenizer_->Encode("the cat")), "the cat");
}

TEST_F(WordPieceFixture, TooLongWordIsUnk) {
  std::string longword(200, 'a');
  auto ids = tokenizer_->EncodeWord(longword);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], SpecialTokens::kUnkId);
}

TEST(WordPieceTrainerTest, VocabBudgetLimitsMerges) {
  // The full alphabet (both char forms) plus specials is a floor; the
  // budget limits merges above it. With a budget below the floor, no
  // merged (multi-char) token may appear.
  WordPieceTrainerOptions opts;
  opts.vocab_size = 40;
  WordPieceTrainer trainer(opts);
  for (int i = 0; i < 5; ++i) {
    trainer.AddDocument("abcdef ghijkl mnopqr stuvwx");
  }
  Vocab v = trainer.Train();
  // 24 chars * 2 forms + 6 specials = 54.
  EXPECT_EQ(v.size(), 54);
  for (int32_t id = 6; id < v.size(); ++id) {
    const std::string& tok = v.Token(id);
    const size_t chars = tok.substr(0, 2) == "##" ? tok.size() - 2 : tok.size();
    EXPECT_EQ(chars, 1u) << tok;
  }
}

TEST(WordPieceTrainerTest, GenerousBudgetLearnsWholeWords) {
  WordPieceTrainerOptions opts;
  opts.vocab_size = 500;
  WordPieceTrainer trainer(opts);
  for (int i = 0; i < 20; ++i) trainer.AddDocument("population country");
  Vocab v = trainer.Train();
  EXPECT_TRUE(v.Contains("population"));
  EXPECT_TRUE(v.Contains("country"));
}

TEST(WordPieceTrainerTest, FrequencyVsLikelihoodScoringDiffer) {
  auto build = [](MergeScoring scoring) {
    WordPieceTrainerOptions opts;
    opts.vocab_size = 80;
    opts.scoring = scoring;
    WordPieceTrainer trainer(opts);
    for (int i = 0; i < 20; ++i) {
      trainer.AddDocument("aaaa aaab aabb abbb bbbb xyzzy xyzzy");
    }
    return trainer.Train();
  };
  Vocab freq = build(MergeScoring::kFrequency);
  Vocab lik = build(MergeScoring::kLikelihood);
  // Both produce working vocabs; exact contents may differ. The key
  // invariant: every single char is present in both.
  for (const char* c : {"a", "b", "x", "y", "z"}) {
    EXPECT_TRUE(freq.Contains(c));
    EXPECT_TRUE(lik.Contains(c));
  }
}

TEST(WordPieceTrainerTest, MinWordCountFilters) {
  WordPieceTrainerOptions opts;
  opts.vocab_size = 1000;
  opts.min_word_count = 5;
  WordPieceTrainer trainer(opts);
  trainer.AddWord("rare", 1);
  trainer.AddWord("common", 10);
  Vocab v = trainer.Train();
  // 'r' only occurs in "rare" which was filtered; 'c' from "common"
  // must be present.
  EXPECT_FALSE(v.Contains("r"));
  EXPECT_TRUE(v.Contains("c"));
}

TEST(WordPieceTokenizerTest, EmptyInput) {
  Vocab v = Vocab::NewWithSpecials();
  WordPieceTokenizer t(v);
  EXPECT_TRUE(t.Encode("").empty());
  EXPECT_TRUE(t.EncodeWord("").empty());
}

}  // namespace
}  // namespace tabrep
