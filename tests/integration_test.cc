// End-to-end integration tests: full pipelines across module
// boundaries — corpus -> vocab -> serialize -> pretrain -> checkpoint
// -> reload -> fine-tune -> predict. These are the paths the examples
// and benches exercise, kept here at a smaller budget so regressions
// surface in ctest.

#include <gtest/gtest.h>

#include <cmath>

#include "pretrain/trainer.h"
#include "serialize/vocab_builder.h"
#include "table/csv.h"
#include "table/synth.h"
#include "tasks/imputation.h"
#include "tasks/qa.h"
#include "tensor/io.h"

namespace tabrep {
namespace {

class IntegrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticCorpusOptions opts;
    opts.num_tables = 24;
    opts.max_rows = 6;
    corpus_ = new TableCorpus(GenerateSyntheticCorpus(opts));
    WordPieceTrainerOptions topts;
    topts.vocab_size = 1200;
    tokenizer_ = new WordPieceTokenizer(BuildCorpusTokenizer(*corpus_, topts));
    SerializerOptions sopts;
    sopts.max_tokens = 72;
    serializer_ = new TableSerializer(tokenizer_, sopts);
  }
  static void TearDownTestSuite() {
    delete serializer_;
    delete tokenizer_;
    delete corpus_;
    serializer_ = nullptr;
    tokenizer_ = nullptr;
    corpus_ = nullptr;
  }

  static ModelConfig TinyConfig(ModelFamily family) {
    ModelConfig config;
    config.family = family;
    config.vocab_size = tokenizer_->vocab().size();
    config.entity_vocab_size = corpus_->entities.size();
    config.transformer.dim = 32;
    config.transformer.num_layers = 1;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 64;
    config.transformer.dropout = 0.0f;
    config.max_position = 128;
    return config;
  }

  static TableCorpus* corpus_;
  static WordPieceTokenizer* tokenizer_;
  static TableSerializer* serializer_;
};

TableCorpus* IntegrationFixture::corpus_ = nullptr;
WordPieceTokenizer* IntegrationFixture::tokenizer_ = nullptr;
TableSerializer* IntegrationFixture::serializer_ = nullptr;

TEST_F(IntegrationFixture, PretrainCheckpointReloadFinetune) {
  // Pretrain briefly, save, reload into a fresh model, fine-tune the
  // reloaded model for imputation, and predict a cell.
  ModelConfig config = TinyConfig(ModelFamily::kTurl);
  const std::string ckpt = ::testing::TempDir() + "/integration_model.bin";
  {
    TableEncoderModel model(config);
    PretrainConfig pconfig;
    pconfig.steps = 20;
    pconfig.batch_size = 2;
    pconfig.use_mer = true;
    PretrainTrainer trainer(&model, serializer_, pconfig);
    trainer.Train(*corpus_);
    ASSERT_TRUE(SaveTensors(model.ExportStateDict(), ckpt).ok());
  }
  ModelConfig fresh = config;
  fresh.seed = 555;
  TableEncoderModel reloaded(fresh);
  auto state = LoadTensors(ckpt);
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(reloaded.ImportStateDict(*state).ok());

  FineTuneConfig fconfig;
  fconfig.steps = 30;
  fconfig.batch_size = 2;
  ImputationTask task(&reloaded, serializer_, fconfig, *corpus_);
  task.Train(*corpus_);
  const Table& t = corpus_->tables[0];
  // Find a categorical cell to predict.
  for (int64_t c = 0; c < t.num_columns(); ++c) {
    if (t.column(c).type == ColumnType::kText ||
        t.column(c).type == ColumnType::kEntity) {
      std::string predicted = task.PredictCell(t, 0, static_cast<int32_t>(c));
      EXPECT_FALSE(predicted.empty());
      return;
    }
  }
}

TEST_F(IntegrationFixture, CsvToAnswerPipeline) {
  // CSV text -> Table -> QA answer, the quickstart path.
  const char* csv =
      "Country,Capital,Population\n"
      "France,Paris,67.4\n"
      "Japan,Tokyo,125.7\n";
  auto table = ReadCsvString(csv);
  ASSERT_TRUE(table.ok());
  ModelConfig config = TinyConfig(ModelFamily::kTapas);
  TableEncoderModel model(config);
  FineTuneConfig fconfig;
  fconfig.steps = 5;
  QaTask qa(&model, serializer_, fconfig);
  std::string answer = qa.Answer(*table, "what is the capital of france");
  // Untrained model: answer must still be some cell of the table.
  bool is_cell = false;
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    for (int64_t c = 0; c < table->num_columns(); ++c) {
      if (table->cell(r, c).ToText() == answer) is_cell = true;
    }
  }
  EXPECT_TRUE(is_cell);
}

TEST_F(IntegrationFixture, VocabPersistenceKeepsSegmentation) {
  const std::string path = ::testing::TempDir() + "/integration_vocab.txt";
  ASSERT_TRUE(tokenizer_->vocab().Save(path).ok());
  auto loaded = Vocab::Load(path);
  ASSERT_TRUE(loaded.ok());
  WordPieceTokenizer reloaded(*loaded);
  for (const std::string& text :
       {std::string("population of france"), std::string("satyajit ray"),
        std::string("hours-per-week 40")}) {
    EXPECT_EQ(tokenizer_->Encode(text), reloaded.Encode(text)) << text;
  }
}

TEST_F(IntegrationFixture, WholePipelineIsDeterministic) {
  // Two independent runs of corpus -> vocab -> model -> short pretrain
  // must produce bit-identical training curves.
  auto run = [] {
    SyntheticCorpusOptions opts;
    opts.num_tables = 8;
    TableCorpus corpus = GenerateSyntheticCorpus(opts);
    WordPieceTrainerOptions topts;
    topts.vocab_size = 600;
    WordPieceTokenizer tokenizer = BuildCorpusTokenizer(corpus, topts);
    TableSerializer serializer(&tokenizer);
    ModelConfig config;
    config.family = ModelFamily::kTapas;
    config.vocab_size = tokenizer.vocab().size();
    config.transformer.dim = 16;
    config.transformer.num_layers = 1;
    config.transformer.num_heads = 2;
    config.transformer.ffn_dim = 32;
    config.transformer.dropout = 0.1f;
    TableEncoderModel model(config);
    PretrainConfig pconfig;
    pconfig.steps = 10;
    PretrainTrainer trainer(&model, &serializer, pconfig);
    return trainer.Train(corpus);
  };
  auto a = run();
  auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i].mlm_loss, b[i].mlm_loss) << "step " << i;
  }
}

TEST_F(IntegrationFixture, TruncatedTablesStillTrain) {
  // A serializer with a harsh token budget must not break training.
  SerializerOptions sopts;
  sopts.max_tokens = 24;
  TableSerializer tight(tokenizer_, sopts);
  ModelConfig config = TinyConfig(ModelFamily::kMate);
  TableEncoderModel model(config);
  PretrainConfig pconfig;
  pconfig.steps = 10;
  PretrainTrainer trainer(&model, &tight, pconfig);
  auto log = trainer.Train(*corpus_);
  EXPECT_EQ(log.size(), 10u);
  for (const auto& entry : log) {
    EXPECT_TRUE(std::isfinite(entry.mlm_loss));
  }
}

}  // namespace
}  // namespace tabrep
