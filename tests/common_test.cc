#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace tabrep {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad width");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad width");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kIOError, StatusCode::kCorruption,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_NE(StatusCodeName(code), "Unknown");
  }
}

Status FailsThenPropagates() {
  TABREP_RETURN_IF_ERROR(Status::NotFound("inner"));
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> UsesAssignOrReturn(int x) {
  TABREP_ASSIGN_OR_RETURN(v, ParsePositive(x));
  return v + 1;
}

TEST(ResultTest, AssignOrReturn) {
  EXPECT_EQ(*UsesAssignOrReturn(1), 3);
  EXPECT_FALSE(UsesAssignOrReturn(0).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
  // Every residue appears.
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  auto s = rng.SampleWithoutReplacement(20, 10);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (size_t x : s) EXPECT_LT(x, 20u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(19);
  auto s = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, SplitWhitespace) {
  auto parts = SplitWhitespace("  hello\tworld \n x ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "world");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringUtilTest, CasePrefixSuffix) {
  EXPECT_EQ(ToLowerAscii("HeLLo"), "hello");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringUtilTest, NumericPredicates) {
  EXPECT_TRUE(IsInteger("42"));
  EXPECT_TRUE(IsInteger("-7"));
  EXPECT_TRUE(IsInteger("+7"));
  EXPECT_FALSE(IsInteger("4.2"));
  EXPECT_FALSE(IsInteger("abc"));
  EXPECT_FALSE(IsInteger(""));
  EXPECT_TRUE(IsNumeric("4.2"));
  EXPECT_TRUE(IsNumeric("-1e3"));
  EXPECT_FALSE(IsNumeric("12a"));
}

TEST(StringUtilTest, ParseDoubleRejectsTrailing) {
  double d;
  EXPECT_TRUE(ParseDouble(" 2.5 ", &d));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_FALSE(ParseDouble("2.5x", &d));
  EXPECT_FALSE(ParseDouble("inf", &d));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-12.0), "-12");
  EXPECT_EQ(FormatDouble(25.69), "25.69");
}

}  // namespace
}  // namespace tabrep
