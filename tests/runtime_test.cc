#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "pretrain/trainer.h"
#include "serialize/vocab_builder.h"
#include "table/synth.h"
#include "tensor/ops.h"

namespace tabrep {
namespace {

/// Restores the default runtime configuration when a test exits, so
/// thread-count changes never leak into other test cases.
class ScopedRuntimeConfig {
 public:
  explicit ScopedRuntimeConfig(int num_threads) {
    runtime::Configure({num_threads});
  }
  ~ScopedRuntimeConfig() { runtime::Configure({}); }
};

TEST(ThreadPoolTest, StartsAndStopsAtEverySize) {
  for (int n : {1, 2, 4, 7}) {
    runtime::ThreadPool pool(n);
    EXPECT_EQ(pool.size(), n);
  }
  // Sub-one requests clamp to a single lane (the caller).
  runtime::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
}

TEST(ThreadPoolTest, SubmitRunsTasksOnWorkers) {
  runtime::ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      if (ran.fetch_add(1) + 1 == 64) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ran.load() == 64; });
  EXPECT_EQ(ran.load(), 64);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ScopedRuntimeConfig threads(4);
  for (int64_t grain : {1, 3, 17, 1000}) {
    std::vector<std::atomic<int>> visits(100);
    runtime::ParallelFor(0, 100, grain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) visits[static_cast<size_t>(i)]++;
    });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ParallelForTest, EmptyAndSingleChunkRanges) {
  ScopedRuntimeConfig threads(4);
  int calls = 0;
  runtime::ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  runtime::ParallelFor(0, 3, 8, [&](int64_t lo, int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 3);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, PropagatesExceptionsAndStaysUsable) {
  ScopedRuntimeConfig threads(4);
  EXPECT_THROW(
      runtime::ParallelFor(0, 32, 1,
                           [&](int64_t lo, int64_t) {
                             if (lo == 7) throw std::runtime_error("chunk 7");
                           }),
      std::runtime_error);
  // The pool survives a throwing region and keeps scheduling work.
  std::atomic<int64_t> sum{0};
  runtime::ParallelFor(0, 32, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 32 * 31 / 2);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  ScopedRuntimeConfig threads(4);
  std::vector<std::atomic<int>> visits(64);
  runtime::ParallelFor(0, 8, 1, [&](int64_t outer_lo, int64_t outer_hi) {
    for (int64_t outer = outer_lo; outer < outer_hi; ++outer) {
      EXPECT_TRUE(runtime::InParallelRegion());
      runtime::ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          visits[static_cast<size_t>(outer * 8 + i)]++;
        }
      });
    }
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  EXPECT_FALSE(runtime::InParallelRegion());
}

TEST(RuntimeConfigTest, ConfigureControlsNumThreads) {
  runtime::Configure({3});
  EXPECT_EQ(runtime::NumThreads(), 3);
  EXPECT_EQ(runtime::GlobalPool().size(), 3);
  runtime::Configure({});
  EXPECT_GE(runtime::NumThreads(), 1);
}

Tensor MatMulAt(int threads, const Tensor& a, const Tensor& b) {
  ScopedRuntimeConfig config(threads);
  return ops::MatMul(a, b);
}

TEST(DeterminismTest, MatMulIsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(11);
  Tensor a = Tensor::Randn({37, 29}, rng);
  Tensor b = Tensor::Randn({29, 41}, rng);
  Tensor serial = MatMulAt(1, a, b);
  for (int threads : {2, 4, 8}) {
    Tensor parallel = MatMulAt(threads, a, b);
    ASSERT_EQ(parallel.numel(), serial.numel());
    EXPECT_EQ(std::memcmp(parallel.data(), serial.data(),
                          static_cast<size_t>(serial.numel()) * sizeof(float)),
              0)
        << "MatMul differs at " << threads << " threads";
  }
}

TensorMap PretrainStepAt(int threads) {
  ScopedRuntimeConfig config(threads);
  SyntheticCorpusOptions opts;
  opts.num_tables = 8;
  opts.max_rows = 5;
  opts.seed = 42;
  TableCorpus corpus = GenerateSyntheticCorpus(opts);
  WordPieceTrainerOptions topts;
  topts.vocab_size = 400;
  WordPieceTokenizer tokenizer = BuildCorpusTokenizer(corpus, topts);
  SerializerOptions sopts;
  sopts.max_tokens = 48;
  TableSerializer serializer(&tokenizer, sopts);

  ModelConfig mconfig;
  mconfig.family = ModelFamily::kTapas;
  mconfig.vocab_size = tokenizer.vocab().size();
  mconfig.entity_vocab_size = corpus.entities.size();
  mconfig.transformer.dim = 16;
  mconfig.transformer.num_layers = 1;
  mconfig.transformer.num_heads = 2;
  mconfig.transformer.ffn_dim = 32;
  mconfig.transformer.dropout = 0.1f;  // exercises per-head seed draws
  mconfig.max_position = 64;
  mconfig.seed = 5;
  TableEncoderModel model(mconfig);

  PretrainConfig pconfig;
  pconfig.steps = 2;
  pconfig.batch_size = 4;
  pconfig.seed = 9;
  PretrainTrainer trainer(&model, &serializer, pconfig);
  trainer.Train(corpus);
  return model.ExportStateDict();
}

TEST(DeterminismTest, PretrainStepIsBitwiseIdenticalAcrossThreadCounts) {
  TensorMap serial = PretrainStepAt(1);
  TensorMap parallel = PretrainStepAt(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [name, tensor] : serial) {
    auto it = parallel.find(name);
    ASSERT_NE(it, parallel.end()) << name;
    ASSERT_EQ(it->second.numel(), tensor.numel()) << name;
    EXPECT_EQ(std::memcmp(it->second.data(), tensor.data(),
                          static_cast<size_t>(tensor.numel()) * sizeof(float)),
              0)
        << "parameter " << name << " differs across thread counts";
  }
}

}  // namespace
}  // namespace tabrep
