#include <gtest/gtest.h>

#include <cmath>

#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/transformer.h"
#include "tensor/ops.h"

namespace tabrep {
namespace {

TEST(ModuleTest, ParameterCollection) {
  Rng rng(1);
  nn::FeedForward ffn(8, 16, rng);
  // fc1: 8*16 + 16, fc2: 16*8 + 8.
  EXPECT_EQ(ffn.NumParameters(), 8 * 16 + 16 + 16 * 8 + 8);
  EXPECT_EQ(ffn.Parameters().size(), 4u);
}

TEST(ModuleTest, StateDictRoundTrip) {
  Rng rng(2);
  nn::Linear a(4, 3, rng);
  nn::Linear b(4, 3, rng);
  TensorMap state;
  a.ExportState("m/", &state);
  ASSERT_TRUE(b.ImportState("m/", state).ok());
  ag::Variable x = ag::Variable::Constant(Tensor::Randn({2, 4}, rng));
  EXPECT_TRUE(a.Forward(x).value().AllClose(b.Forward(x).value()));
}

TEST(ModuleTest, ImportMissingParamFails) {
  Rng rng(3);
  nn::Linear a(2, 2, rng);
  TensorMap empty;
  Status s = a.ImportState("m/", empty);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(ModuleTest, ImportShapeMismatchFails) {
  Rng rng(4);
  nn::Linear a(2, 2, rng);
  nn::Linear b(2, 3, rng);
  TensorMap state;
  b.ExportState("m/", &state);
  Status s = a.ImportState("m/", state);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(LinearTest, ComputesAffine) {
  Rng rng(5);
  nn::Linear lin(2, 2, rng);
  // Overwrite weights deterministically via state dict.
  TensorMap state;
  state["m/weight"] = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  state["m/bias"] = Tensor::Of({10, 20});
  ASSERT_TRUE(lin.ImportState("m/", state).ok());
  ag::Variable x = ag::Variable::Constant(Tensor::FromVector({1, 2}, {1, 1}));
  Tensor y = lin.Forward(x).value();
  EXPECT_TRUE(y.AllClose(Tensor::FromVector({1, 2}, {14, 26})));
}

TEST(EmbeddingTest, LooksUpRows) {
  Rng rng(6);
  nn::Embedding emb(5, 3, rng);
  ag::Variable out = emb.Forward({4, 0});
  EXPECT_EQ(out.shape(), (std::vector<int64_t>{2, 3}));
  // Row 4 of the table equals output row 0.
  for (int64_t j = 0; j < 3; ++j) {
    EXPECT_EQ(out.value().at(0, j), emb.weight().value().at(4, j));
  }
}

TEST(LayerNormModuleTest, TrainsTowardsTarget) {
  // Single-layer sanity: LN gamma/beta can be trained to match a target.
  Rng rng(7);
  nn::LayerNorm ln(4);
  Tensor x_init = Tensor::Randn({3, 4}, rng);
  Tensor target = Tensor::Randn({3, 4}, rng);
  nn::Adam opt(ln.Parameters(), 0.05f);
  float first_loss = 0, last_loss = 0;
  for (int step = 0; step < 100; ++step) {
    opt.ZeroGrad();
    ag::Variable x = ag::Variable::Constant(x_init);
    ag::Variable diff = ag::Sub(ln.Forward(x), ag::Variable::Constant(target));
    ag::Variable loss = ag::MeanAll(ag::Mul(diff, diff));
    ag::Backward(loss);
    opt.Step();
    if (step == 0) first_loss = loss.value()[0];
    last_loss = loss.value()[0];
  }
  EXPECT_LT(last_loss, first_loss * 0.9f);
}

TEST(AttentionTest, OutputShapeMatchesInput) {
  Rng rng(8);
  nn::MultiHeadSelfAttention attn(16, 4, 0.0f, rng);
  attn.SetTraining(false);
  ag::Variable x = ag::Variable::Constant(Tensor::Randn({6, 16}, rng));
  ag::Variable y = attn.Forward(x, nullptr, rng);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{6, 16}));
}

TEST(AttentionTest, SharedBiasBlocksAttention) {
  Rng rng(9);
  nn::MultiHeadSelfAttention attn(8, 2, 0.0f, rng);
  attn.SetTraining(false);
  const int64_t t = 4;
  ag::Variable x = ag::Variable::Constant(Tensor::Randn({t, 8}, rng));
  // Mask everything except the diagonal.
  nn::AttentionBias bias;
  bias.shared = Tensor::Full({t, t}, nn::kMaskedScore);
  for (int64_t i = 0; i < t; ++i) bias.shared.at(i, i) = 0.0f;
  Tensor probs;
  attn.Forward(x, &bias, rng, &probs);
  for (int64_t i = 0; i < t; ++i) {
    EXPECT_NEAR(probs.at(i, i), 1.0f, 1e-4f);
    for (int64_t j = 0; j < t; ++j) {
      if (i != j) {
        EXPECT_LT(probs.at(i, j), 1e-6f);
      }
    }
  }
}

TEST(AttentionTest, ProbsAreRowStochastic) {
  Rng rng(10);
  nn::MultiHeadSelfAttention attn(8, 2, 0.0f, rng);
  attn.SetTraining(false);
  ag::Variable x = ag::Variable::Constant(Tensor::Randn({5, 8}, rng));
  Tensor probs;
  attn.Forward(x, nullptr, rng, &probs);
  for (int64_t i = 0; i < 5; ++i) {
    float sum = 0;
    for (int64_t j = 0; j < 5; ++j) sum += probs.at(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST(AttentionTest, PerHeadBiasesApplyIndependently) {
  Rng rng(11);
  const int64_t t = 3;
  nn::MultiHeadSelfAttention attn(8, 2, 0.0f, rng);
  attn.SetTraining(false);
  ag::Variable x = ag::Variable::Constant(Tensor::Randn({t, 8}, rng));
  nn::AttentionBias bias;
  // Head 0: only diagonal. Head 1: dense.
  Tensor diag = Tensor::Full({t, t}, nn::kMaskedScore);
  for (int64_t i = 0; i < t; ++i) diag.at(i, i) = 0.0f;
  bias.per_head = {diag, Tensor::Zeros({t, t})};
  Tensor probs;  // averaged over heads
  attn.Forward(x, &bias, rng, &probs);
  // Diagonal gets at least the 0.5 share from head 0.
  for (int64_t i = 0; i < t; ++i) EXPECT_GT(probs.at(i, i), 0.5f - 1e-4f);
  // Off-diagonal strictly below 0.5 (only head 1 contributes).
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t j = 0; j < t; ++j) {
      if (i != j) {
        EXPECT_LT(probs.at(i, j), 0.5f);
      }
    }
  }
}

TEST(AttentionTest, GradientsFlowToAllProjections) {
  Rng rng(12);
  nn::MultiHeadSelfAttention attn(8, 2, 0.0f, rng);
  ag::Variable x = ag::Variable::Param(Tensor::Randn({4, 8}, rng));
  ag::Variable y = attn.Forward(x, nullptr, rng);
  ag::Backward(ag::SumAll(ag::Mul(y, y)));
  for (ag::Variable* p : attn.Parameters()) {
    bool nonzero = false;
    for (int64_t i = 0; i < p->grad().numel(); ++i) {
      if (p->grad()[i] != 0.0f) nonzero = true;
    }
    EXPECT_TRUE(nonzero);
  }
  // Input grad flows too.
  EXPECT_GT(ops::Norm(x.grad()), 0.0f);
}

TEST(TransformerTest, StackRunsAndCapturesAttention) {
  Rng rng(13);
  nn::TransformerConfig config;
  config.dim = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  nn::TransformerEncoder encoder(config, rng);
  encoder.SetTraining(false);
  ag::Variable x = ag::Variable::Constant(Tensor::Randn({5, 16}, rng));
  std::vector<Tensor> attn;
  ag::Variable y = encoder.Forward(x, nullptr, rng, &attn);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{5, 16}));
  EXPECT_EQ(attn.size(), 2u);
  EXPECT_EQ(attn[0].shape(), (std::vector<int64_t>{5, 5}));
}

TEST(TransformerTest, CanOverfitTinyRegression) {
  // The full encoder must be able to memorize a small mapping.
  Rng rng(14);
  nn::TransformerConfig config;
  config.dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ffn_dim = 32;
  config.dropout = 0.0f;
  nn::TransformerEncoder encoder(config, rng);
  nn::Linear out(16, 1, rng);
  Tensor x_init = Tensor::Randn({4, 16}, rng);
  Tensor target = Tensor::FromVector({4, 1}, {1, -1, 2, 0});
  std::vector<ag::Variable*> params = encoder.Parameters();
  for (ag::Variable* p : out.Parameters()) params.push_back(p);
  nn::Adam opt(params, 1e-2f);
  float first = 0, last = 0;
  for (int step = 0; step < 60; ++step) {
    opt.ZeroGrad();
    ag::Variable x = ag::Variable::Constant(x_init);
    ag::Variable y = out.Forward(encoder.Forward(x, nullptr, rng));
    ag::Variable diff = ag::Sub(y, ag::Variable::Constant(target));
    ag::Variable loss = ag::MeanAll(ag::Mul(diff, diff));
    ag::Backward(loss);
    opt.Step();
    if (step == 0) first = loss.value()[0];
    last = loss.value()[0];
  }
  EXPECT_LT(last, first * 0.2f);
}

TEST(OptimizerTest, SgdDescendsQuadratic) {
  ag::Variable x = ag::Variable::Param(Tensor::Of({5.0f}));
  nn::Sgd opt({&x}, 0.1f);
  for (int i = 0; i < 50; ++i) {
    opt.ZeroGrad();
    ag::Backward(ag::Mul(x, x));
    opt.Step();
  }
  EXPECT_NEAR(x.value()[0], 0.0f, 1e-3f);
}

TEST(OptimizerTest, SgdMomentumDescends) {
  ag::Variable x = ag::Variable::Param(Tensor::Of({5.0f}));
  nn::Sgd opt({&x}, 0.05f, 0.9f);
  for (int i = 0; i < 150; ++i) {
    opt.ZeroGrad();
    ag::Backward(ag::Mul(x, x));
    opt.Step();
  }
  EXPECT_NEAR(x.value()[0], 0.0f, 0.05f);
}

TEST(OptimizerTest, AdamDescendsQuadratic) {
  ag::Variable x = ag::Variable::Param(Tensor::Of({3.0f, -4.0f}));
  nn::Adam opt({&x}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    ag::Backward(ag::SumAll(ag::Mul(x, x)));
    opt.Step();
  }
  EXPECT_NEAR(x.value()[0], 0.0f, 0.02f);
  EXPECT_NEAR(x.value()[1], 0.0f, 0.02f);
}

TEST(OptimizerTest, AdamWDecaysWeights) {
  // With zero gradient signal, weight decay alone shrinks the weight.
  nn::AdamOptions opts;
  opts.weight_decay = 0.1f;
  ag::Variable x = ag::Variable::Param(Tensor::Of({1.0f}));
  nn::Adam opt({&x}, 0.1f, opts);
  for (int i = 0; i < 20; ++i) {
    opt.ZeroGrad();
    // Loss that ignores x: constant; grads stay zero.
    opt.Step();
  }
  EXPECT_LT(std::fabs(x.value()[0]), 1.0f);
}

TEST(OptimizerTest, GradClipScalesLargeGradients) {
  ag::Variable x = ag::Variable::Param(Tensor::Of({1000.0f}));
  ag::Backward(ag::Mul(x, x));  // grad = 2000
  float norm = nn::ClipGradNorm({&x}, 1.0f);
  EXPECT_NEAR(norm, 2000.0f, 1.0f);
  EXPECT_NEAR(x.grad()[0], 1.0f, 1e-4f);
}

TEST(OptimizerTest, GradClipNoOpBelowThreshold) {
  ag::Variable x = ag::Variable::Param(Tensor::Of({0.1f}));
  ag::Backward(ag::Mul(x, x));  // grad = 0.2
  nn::ClipGradNorm({&x}, 1.0f);
  EXPECT_NEAR(x.grad()[0], 0.2f, 1e-5f);
}

TEST(ScheduleTest, WarmupThenDecay) {
  nn::WarmupLinearSchedule sched(1.0f, 10, 100);
  EXPECT_LT(sched.LrAt(0), 0.2f);
  EXPECT_NEAR(sched.LrAt(9), 1.0f, 1e-5f);
  EXPECT_GT(sched.LrAt(50), sched.LrAt(90));
  EXPECT_NEAR(sched.LrAt(100), 0.0f, 1e-5f);
}

}  // namespace
}  // namespace tabrep
