// Property-based sweeps: invariants that must hold for ANY seed/shape,
// checked across parameter grids with TEST_P. These complement the
// example-based unit tests with coverage of the long tail of inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nn/optimizer.h"
#include "pretrain/masking.h"
#include "serialize/serializer.h"
#include "serialize/vocab_builder.h"
#include "sql/executor.h"
#include "sql/generator.h"
#include "sql/parser.h"
#include "table/synth.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace tabrep {
namespace {

// ---------------------------------------------------------------------------
// MatMul gradient property across shapes.
// ---------------------------------------------------------------------------

class MatMulShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeSweep, GradientMatchesFiniteDifference) {
  auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 100 + k * 10 + n));
  Tensor a_init = Tensor::Randn({m, k}, rng);
  Tensor b_init = Tensor::Randn({k, n}, rng);

  ag::Variable a = ag::Variable::Param(a_init.Clone());
  ag::Variable b = ag::Variable::Constant(b_init);
  ag::Variable y = ag::SumAll(ag::MatMul(a, b));
  ag::Backward(y);

  const float eps = 1e-2f;
  for (int64_t i = 0; i < std::min<int64_t>(a_init.numel(), 6); ++i) {
    Tensor plus = a_init.Clone();
    plus[i] += eps;
    Tensor minus = a_init.Clone();
    minus[i] -= eps;
    const float fp = ops::SumAll(ops::MatMul(plus, b_init))[0];
    const float fm = ops::SumAll(ops::MatMul(minus, b_init))[0];
    EXPECT_NEAR(a.grad()[i], (fp - fm) / (2 * eps), 5e-2f)
        << "shape " << m << "x" << k << "x" << n << " elem " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 1, 7), std::make_tuple(1, 8, 1),
                      std::make_tuple(4, 4, 4)));

// ---------------------------------------------------------------------------
// Serializer invariants across random corpora and option grids.
// ---------------------------------------------------------------------------

class SerializerPropertySweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(SerializerPropertySweep, InvariantsHoldForAnyTable) {
  auto [seed, max_tokens] = GetParam();
  SyntheticCorpusOptions copts;
  copts.num_tables = 8;
  copts.seed = seed;
  copts.null_fraction = 0.1;
  TableCorpus corpus = GenerateSyntheticCorpus(copts);
  WordPieceTrainerOptions vopts;
  vopts.vocab_size = 900;
  WordPieceTokenizer tokenizer = BuildCorpusTokenizer(corpus, vopts);
  SerializerOptions sopts;
  sopts.max_tokens = max_tokens;
  TableSerializer serializer(&tokenizer, sopts);

  for (const Table& t : corpus.tables) {
    TokenizedTable out = serializer.Serialize(t);
    // Budget respected.
    EXPECT_LE(out.size(), max_tokens);
    EXPECT_GT(out.size(), 0);
    // Every token id is in-vocab; every channel in range.
    for (const TokenInfo& tok : out.tokens) {
      EXPECT_GE(tok.id, 0);
      EXPECT_LT(tok.id, tokenizer.vocab().size());
      EXPECT_GE(tok.row, 0);
      EXPECT_GE(tok.column, 0);
      EXPECT_TRUE(tok.segment == 0 || tok.segment == 1);
      EXPECT_GE(tok.kind, 0);
      EXPECT_LT(tok.kind, kNumTokenKinds);
    }
    // Cell spans: in bounds, disjoint, consistent with FindCell.
    std::set<std::pair<int32_t, int32_t>> seen;
    int32_t prev_end = 0;
    for (const CellSpan& s : out.cells) {
      EXPECT_GE(s.begin, prev_end);  // spans are emitted in order
      EXPECT_LT(s.begin, s.end);
      EXPECT_LE(s.end, out.size());
      EXPECT_TRUE(seen.emplace(s.row, s.col).second)
          << "duplicate span for cell " << s.row << "," << s.col;
      EXPECT_EQ(out.FindCell(s.row, s.col), &s);
      prev_end = s.end;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBudgets, SerializerPropertySweep,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{77},
                                         uint64_t{991}),
                       ::testing::Values(24, 64, 256)));

// ---------------------------------------------------------------------------
// Masking invariants across rates.
// ---------------------------------------------------------------------------

class MaskingRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(MaskingRateSweep, TargetsConsistentAtAnyRate) {
  const double rate = GetParam();
  SyntheticCorpusOptions copts;
  copts.num_tables = 6;
  TableCorpus corpus = GenerateSyntheticCorpus(copts);
  WordPieceTrainerOptions vopts;
  vopts.vocab_size = 900;
  WordPieceTokenizer tokenizer = BuildCorpusTokenizer(corpus, vopts);
  TableSerializer serializer(&tokenizer);
  Rng rng(static_cast<uint64_t>(rate * 1000));

  MlmOptions options;
  options.mask_prob = rate;
  options.vocab_size = tokenizer.vocab().size();
  for (const Table& t : corpus.tables) {
    TokenizedTable serialized = serializer.Serialize(t);
    MlmExample ex = ApplyMlmMasking(serialized, options, rng);
    EXPECT_GE(ex.num_masked, 1);
    int64_t targets = 0;
    for (size_t i = 0; i < ex.targets.size(); ++i) {
      if (ex.targets[i] == kIgnoreTarget) continue;
      ++targets;
      // Target stores the ORIGINAL id even when the input kept it.
      EXPECT_EQ(ex.targets[i], serialized.tokens[i].id);
      // Specials/context are never targets.
      const int32_t kind = serialized.tokens[i].kind;
      EXPECT_TRUE(kind == static_cast<int32_t>(TokenKind::kCell) ||
                  kind == static_cast<int32_t>(TokenKind::kHeader));
    }
    EXPECT_EQ(targets, ex.num_masked);
    // The corruption touched only targeted positions.
    for (size_t i = 0; i < ex.targets.size(); ++i) {
      if (ex.targets[i] == kIgnoreTarget) {
        EXPECT_EQ(ex.input.tokens[i].id, serialized.tokens[i].id);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, MaskingRateSweep,
                         ::testing::Values(0.05, 0.15, 0.5, 0.9));

// ---------------------------------------------------------------------------
// SQL: generate -> render -> parse -> execute round trip across seeds.
// ---------------------------------------------------------------------------

class SqlRoundTripSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlRoundTripSweep, GeneratedQueriesRoundTrip) {
  SyntheticCorpusOptions copts;
  copts.num_tables = 10;
  copts.seed = GetParam();
  TableCorpus corpus = GenerateSyntheticCorpus(copts);
  Rng rng(GetParam() + 1);
  int checked = 0;
  for (const Table& t : corpus.tables) {
    for (int i = 0; i < 3; ++i) {
      auto gq = sql::GenerateQuery(t, rng);
      if (!gq) continue;
      ++checked;
      auto parsed = sql::ParseQuery(gq->query.ToSql());
      ASSERT_TRUE(parsed.ok()) << gq->query.ToSql();
      EXPECT_TRUE(*parsed == gq->query) << gq->query.ToSql();
      auto r1 = sql::Execute(gq->query, t);
      auto r2 = sql::Execute(*parsed, t);
      ASSERT_TRUE(r1.ok() && r2.ok());
      ASSERT_EQ(r1->values.size(), r2->values.size());
      for (size_t v = 0; v < r1->values.size(); ++v) {
        EXPECT_EQ(r1->values[v].ToText(), r2->values[v].ToText());
      }
    }
  }
  EXPECT_GT(checked, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlRoundTripSweep,
                         ::testing::Values(uint64_t{5}, uint64_t{123},
                                           uint64_t{888}, uint64_t{31337}));

// ---------------------------------------------------------------------------
// LR schedules.
// ---------------------------------------------------------------------------

TEST(ScheduleProperty, CosineWarmupThenMonotoneDecay) {
  nn::WarmupCosineSchedule sched(1.0f, 10, 100, 0.1f);
  // Warmup rises.
  EXPECT_LT(sched.LrAt(0), sched.LrAt(5));
  EXPECT_NEAR(sched.LrAt(9), 1.0f, 1e-5f);
  // Decay is monotone non-increasing after warmup.
  for (int64_t s = 10; s < 99; ++s) {
    EXPECT_GE(sched.LrAt(s) + 1e-6f, sched.LrAt(s + 1));
  }
  // Ends at the floor, never below it.
  EXPECT_NEAR(sched.LrAt(100), 0.1f, 1e-5f);
  for (int64_t s = 0; s <= 100; s += 7) {
    EXPECT_GE(sched.LrAt(s), 0.1f - 1e-6f);
  }
}

TEST(ScheduleProperty, LinearAndCosineAgreeAtEndpoints) {
  nn::WarmupLinearSchedule lin(2.0f, 5, 50);
  nn::WarmupCosineSchedule cos(2.0f, 5, 50);
  EXPECT_NEAR(lin.LrAt(4), cos.LrAt(4), 1e-5f);   // end of warmup
  EXPECT_NEAR(lin.LrAt(50), 0.0f, 1e-5f);
  EXPECT_NEAR(cos.LrAt(50), 0.0f, 1e-5f);
}

}  // namespace
}  // namespace tabrep
