// Table retrieval: embed every table in a corpus and rank them against
// natural-language queries with a bi-encoder, the "retrieving relevant
// tables" application of §2.1.

#include <cstdio>

#include "serialize/vocab_builder.h"
#include "table/synth.h"
#include "tasks/retrieval.h"

using namespace tabrep;

int main() {
  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_tables = 50;
  TableCorpus corpus = GenerateSyntheticCorpus(corpus_opts);
  WordPieceTrainerOptions vocab_opts;
  vocab_opts.vocab_size = 2000;
  WordPieceTokenizer tokenizer = BuildCorpusTokenizer(corpus, vocab_opts);
  SerializerOptions sopts;
  sopts.max_tokens = 96;
  TableSerializer serializer(&tokenizer, sopts);

  ModelConfig config;
  config.family = ModelFamily::kVanilla;
  config.vocab_size = tokenizer.vocab().size();
  config.transformer.dim = 48;
  config.transformer.num_layers = 2;
  config.transformer.num_heads = 4;
  config.transformer.ffn_dim = 96;
  TableEncoderModel model(config);

  Rng rng(7);
  std::vector<RetrievalExample> examples =
      GenerateRetrievalExamples(corpus, rng);

  FineTuneConfig fconfig;
  fconfig.steps = 200;
  fconfig.batch_size = 4;
  fconfig.lr = 1e-3f;
  RetrievalTask task(&model, &serializer, fconfig);

  RankingReport before = task.Evaluate(corpus, examples);
  std::printf("Zero-shot:  MRR %.3f  Hit@1 %.3f  Hit@5 %.3f\n", before.mrr,
              before.hit_at_1, before.hit_at_5);
  std::printf("Contrastive training on %zu queries ...\n", examples.size());
  task.Train(corpus, examples);
  RankingReport after = task.Evaluate(corpus, examples);
  std::printf("Fine-tuned: MRR %.3f  Hit@1 %.3f  Hit@5 %.3f  NDCG@10 %.3f\n\n",
              after.mrr, after.hit_at_1, after.hit_at_5, after.ndcg_at_10);

  const std::string query = "films directed by akira kurosawa";
  std::printf("Query: \"%s\"\nTop results:\n", query.c_str());
  for (int64_t idx : task.TopK(query, corpus, 3)) {
    const Table& t = corpus.tables[static_cast<size_t>(idx)];
    std::printf("  %s — %s (%lld rows)\n", t.id().c_str(), t.title().c_str(),
                static_cast<long long>(t.num_rows()));
  }
  std::printf("\ntable_retrieval: OK\n");
  return 0;
}
