// Table-based fact checking (TabFact-style natural-language inference,
// one of the survey's headline applications): classify claims as
// entailed or refuted by a table.

#include <cstdio>

#include "serialize/vocab_builder.h"
#include "table/synth.h"
#include "tasks/fact_verification.h"

using namespace tabrep;

int main() {
  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_tables = 16;
  corpus_opts.numeric_table_fraction = 0.1;
  TableCorpus corpus = GenerateSyntheticCorpus(corpus_opts);
  WordPieceTrainerOptions vocab_opts;
  vocab_opts.vocab_size = 2000;
  WordPieceTokenizer tokenizer = BuildCorpusTokenizer(corpus, vocab_opts);
  SerializerOptions sopts;
  sopts.max_tokens = 128;
  TableSerializer serializer(&tokenizer, sopts);

  ModelConfig config;
  config.family = ModelFamily::kTapas;
  config.vocab_size = tokenizer.vocab().size();
  config.transformer.dim = 48;
  config.transformer.num_layers = 2;
  config.transformer.num_heads = 4;
  config.transformer.ffn_dim = 96;
  TableEncoderModel model(config);

  Rng rng(5);
  std::vector<FactExample> train_claims = GenerateFactExamples(corpus, 8, rng);
  // Mix in aggregate claims (labeled by the bundled SQL executor) so
  // the model sees both claim classes.
  for (FactExample& ex : GenerateAggregateFactExamples(corpus, 4, rng)) {
    train_claims.push_back(std::move(ex));
  }
  std::vector<FactExample> test_claims = GenerateFactExamples(corpus, 2, rng);
  std::vector<FactExample> test_aggregate =
      GenerateAggregateFactExamples(corpus, 2, rng);
  std::printf("Generated %zu train / %zu + %zu test claims\n",
              train_claims.size(), test_claims.size(), test_aggregate.size());

  FineTuneConfig fconfig;
  fconfig.steps = 1500;
  fconfig.batch_size = 4;
  fconfig.lr = 1e-3f;
  FactVerificationTask task(&model, &serializer, fconfig);
  std::printf("Training the entailment classifier ...\n");
  task.Train(corpus, train_claims);
  ClassificationReport train_report = task.Evaluate(corpus, train_claims);
  ClassificationReport report = task.Evaluate(corpus, test_claims);
  ClassificationReport agg_report = task.Evaluate(corpus, test_aggregate);
  std::printf(
      "  train accuracy %.3f | held-out simple claims %.3f | held-out "
      "aggregate claims %.3f\n"
      "  (aggregate claims need numeric reasoning (\u00a72.4), but coarse "
      "25-75%% perturbations\n   also admit a range-plausibility shortcut, "
      "so either column may lead at this scale)\n\n",
      train_report.accuracy, report.accuracy, agg_report.accuracy);

  // Demo claims against a corpus table (in-distribution), gold labels
  // shown for comparison.
  std::printf("Sample verdicts (gold in brackets):\n");
  for (size_t i = 0; i < test_claims.size() && i < 6; ++i) {
    const FactExample& ex = test_claims[i];
    const Table& t = corpus.tables[static_cast<size_t>(ex.table_index)];
    std::printf("Claim: \"%s\" -> %s  [gold: %s]\n", ex.claim.c_str(),
                task.Verify(t, ex.claim) == 1 ? "ENTAILED" : "REFUTED",
                ex.label == 1 ? "ENTAILED" : "REFUTED");
  }
  std::printf("\nfact_checking: OK\n");
  return 0;
}
