// Failure analysis (§3.4 / Fig. 2d) with the introspection layer:
// fine-tune imputation while logging per-example evaluation records,
// slice the records by table provenance tag into a per-slice accuracy
// table, then open an attention-capture scope and ask what a specific
// cell attended to when the model filled it in.

#include <cstdio>

#include "eval/failure_analysis.h"
#include "obs/introspect.h"
#include "pretrain/trainer.h"
#include "serialize/vocab_builder.h"
#include "table/synth.h"
#include "tasks/imputation.h"

using namespace tabrep;

int main() {
  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_tables = 60;
  corpus_opts.numeric_table_fraction = 0.2;
  TableCorpus corpus = GenerateSyntheticCorpus(corpus_opts);
  Rng split_rng(1);
  auto [train, test] = corpus.Split(0.25, split_rng);

  WordPieceTrainerOptions vocab_opts;
  vocab_opts.vocab_size = 2000;
  WordPieceTokenizer tokenizer = BuildCorpusTokenizer(corpus, vocab_opts);
  SerializerOptions sopts;
  sopts.max_tokens = 128;
  TableSerializer serializer(&tokenizer, sopts);

  ModelConfig config;
  config.family = ModelFamily::kTurl;
  config.vocab_size = tokenizer.vocab().size();
  config.entity_vocab_size = corpus.entities.size();
  config.transformer.dim = 48;
  config.transformer.num_layers = 2;
  config.transformer.num_heads = 4;
  config.transformer.ffn_dim = 96;
  config.max_position = 160;
  TableEncoderModel model(config);

  std::printf("Pretraining (MLM + MER) ...\n");
  PretrainConfig pconfig;
  pconfig.steps = 200;
  pconfig.batch_size = 2;
  pconfig.use_mer = true;
  PretrainTrainer pretrainer(&model, &serializer, pconfig);
  pretrainer.Train(train);

  // Per-example records: attach an ExampleLog to the fine-tune config
  // and every Train batch / Evaluate example writes one record.
  eval::ExampleLog example_log;
  std::printf("Fine-tuning for imputation with example logging ...\n");
  FineTuneConfig fconfig;
  fconfig.steps = 400;
  fconfig.batch_size = 4;
  fconfig.lr = 1e-3f;
  fconfig.example_log = &example_log;
  ImputationOptions iopts;
  iopts.include_numeric_columns = true;
  ImputationTask task(&model, &serializer, fconfig, train, iopts);
  task.Train(train);
  std::printf("  %lld training records logged\n",
              static_cast<long long>(example_log.size()));

  // Held-out evaluation; keep only these records for the slice table.
  example_log.Clear();
  ClassificationReport cat = task.Evaluate(test, 120,
                                           CellCategory::kCategorical);
  ClassificationReport num = task.Evaluate(test, 120, CellCategory::kNumeric);
  std::printf("  held-out: categorical acc %.3f (%lld cells), numeric acc "
              "%.3f (%lld cells)\n\n",
              cat.accuracy, static_cast<long long>(cat.total), num.accuracy,
              static_cast<long long>(num.total));

  // Error slicing: one row per provenance tag. The same failure modes
  // the paper narrates (numeric cells, missing context) show up as the
  // low-accuracy slices.
  const std::vector<eval::ExampleRecord> records = example_log.records();
  std::printf("Error slices over %lld held-out records:\n%s\n",
              static_cast<long long>(records.size()),
              eval::RenderSliceTable(eval::SliceByTag(records, "eval"))
                  .c_str());
  Status jsonl = eval::WriteExampleRecordsJsonl(records,
                                                "failure_analysis.jsonl");
  if (jsonl.ok()) {
    std::printf("per-example records: failure_analysis.jsonl\n\n");
  }

  // Attention capture: what did the model look at when filling in the
  // Recipient cell of the paper's awards demo table?
  Table awards = MakeAwardsDemoTable();
  std::printf("Demo table:\n%s", awards.ToString(5).c_str());
  std::printf("  (row 1, Recipient) -> %s\n\n",
              task.PredictCell(awards, 1, 1).c_str());

  model.SetTraining(false);
  TokenizedTable serialized = serializer.Serialize(awards);
  obs::CaptureScope scope;
  Rng rng(55);
  model.Encode(serialized, rng, {.need_cells = false});
  scope.SetTokenLabels(eval::TokenLabels(serialized, tokenizer));
  const int64_t last_layer = scope.size() - 1;
  std::printf("Captured %lld attention records; querying cell (1,1) at "
              "layer %lld:\n",
              static_cast<long long>(scope.size()),
              static_cast<long long>(last_layer));
  for (const obs::AttentionEdge& e :
       eval::QueryCellAttention(scope, serialized, 1, 1, 5, last_layer)) {
    std::printf("  %5.1f%%  pos %3lld  %s\n", 100.0 * e.weight,
                static_cast<long long>(e.position), e.token.c_str());
  }

  std::printf("\nfailure_analysis: OK\n");
  return 0;
}
