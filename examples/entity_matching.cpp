// Entity matching for data integration (the paper's intro cites
// embedding-based integration [8] and Ditto-style matching [26]): given
// two records that may describe the same real-world entity with dirty
// values (typos, abbreviations, dropped tokens), classify match vs
// non-match from the [CLS] of the serialized pair.

#include <cstdio>

#include "serialize/vocab_builder.h"
#include "table/corruption.h"
#include "table/synth.h"
#include "tasks/entity_matching.h"

using namespace tabrep;

int main() {
  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_tables = 40;
  TableCorpus corpus = GenerateSyntheticCorpus(corpus_opts);
  WordPieceTrainerOptions vocab_opts;
  vocab_opts.vocab_size = 2000;
  WordPieceTokenizer tokenizer = BuildCorpusTokenizer(corpus, vocab_opts);
  SerializerOptions sopts;
  sopts.max_tokens = 96;
  TableSerializer serializer(&tokenizer, sopts);

  ModelConfig config;
  config.family = ModelFamily::kTapas;
  config.vocab_size = tokenizer.vocab().size();
  config.transformer.dim = 48;
  config.transformer.num_layers = 2;
  config.transformer.num_heads = 4;
  config.transformer.ffn_dim = 96;
  TableEncoderModel model(config);

  Rng rng(31);
  auto train_pairs = GenerateMatchingExamples(corpus, 8, rng);
  auto test_pairs = GenerateMatchingExamples(corpus, 3, rng);
  std::printf("Generated %zu train / %zu test record pairs\n",
              train_pairs.size(), test_pairs.size());

  FineTuneConfig fconfig;
  fconfig.steps = 600;
  fconfig.batch_size = 4;
  fconfig.lr = 1e-3f;
  EntityMatchingTask task(&model, &serializer, fconfig);
  std::printf("Training the matcher ...\n");
  task.Train(train_pairs);
  ClassificationReport report = task.Evaluate(test_pairs);
  std::printf("  held-out accuracy %.3f macro-F1 %.3f\n\n", report.accuracy,
              report.macro.f1);

  // Show a few verdicts with the dirty record rendered.
  std::printf("Sample verdicts (gold in brackets):\n");
  for (size_t i = 0; i < test_pairs.size() && i < 5; ++i) {
    const MatchingExample& ex = test_pairs[i];
    std::string left, right;
    for (size_t c = 0; c < ex.left.size(); ++c) {
      if (c) {
        left += " | ";
        right += " | ";
      }
      left += ex.left[c].ToText();
      right += ex.right[c].ToText();
    }
    std::printf("A: %s\nB: %s\n-> %s  [gold: %s]\n\n", left.c_str(),
                right.c_str(), task.Match(ex) == 1 ? "MATCH" : "NO MATCH",
                ex.label == 1 ? "MATCH" : "NO MATCH");
  }
  std::printf("entity_matching: OK\n");
  return 0;
}
