// Text-to-SQL semantic parsing (§2.1 "Semantic Parsing: Text-to-SQL"):
// train a sketch-based parser that turns natural-language questions
// into executable SQL over a table, then run the predicted queries
// through the bundled SQL engine and compare denotations.

#include <cstdio>

#include "serialize/vocab_builder.h"
#include "sql/executor.h"
#include "table/synth.h"
#include "tasks/semantic_parsing.h"

using namespace tabrep;

int main() {
  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_tables = 40;
  corpus_opts.numeric_table_fraction = 0.15;
  TableCorpus corpus = GenerateSyntheticCorpus(corpus_opts);
  WordPieceTrainerOptions vocab_opts;
  vocab_opts.vocab_size = 2000;
  WordPieceTokenizer tokenizer = BuildCorpusTokenizer(corpus, vocab_opts);
  SerializerOptions sopts;
  sopts.max_tokens = 128;
  TableSerializer serializer(&tokenizer, sopts);

  ModelConfig config;
  config.family = ModelFamily::kTapas;
  config.vocab_size = tokenizer.vocab().size();
  config.transformer.dim = 48;
  config.transformer.num_layers = 2;
  config.transformer.num_heads = 4;
  config.transformer.ffn_dim = 96;
  TableEncoderModel model(config);

  Rng rng(21);
  std::vector<ParsingExample> train_examples =
      GenerateParsingExamples(corpus, 4, rng);
  std::vector<ParsingExample> test_examples =
      GenerateParsingExamples(corpus, 2, rng);
  std::printf("Generated %zu train / %zu eval questions\n",
              train_examples.size(), test_examples.size());

  FineTuneConfig fconfig;
  fconfig.steps = 800;
  fconfig.batch_size = 4;
  fconfig.lr = 1e-3f;
  SemanticParsingTask parser(&model, &serializer, fconfig);
  std::printf("Training the sketch parser (aggregate / select / where "
              "slots) ...\n");
  parser.Train(corpus, train_examples);

  ParsingEval eval = parser.Evaluate(corpus, test_examples);
  std::printf("  slots: agg %.3f select %.3f where-col %.3f where-val %.3f\n",
              eval.aggregate_acc, eval.select_acc, eval.where_col_acc,
              eval.where_val_acc);
  std::printf("  exact match %.3f | denotation (execution) accuracy %.3f "
              "over %lld questions\n\n",
              eval.exact_match, eval.denotation,
              static_cast<long long>(eval.total));

  // Parse a few questions and run the predicted SQL.
  std::printf("Predicted SQL for sample questions:\n");
  for (size_t i = 0; i < test_examples.size() && i < 5; ++i) {
    const ParsingExample& ex = test_examples[i];
    const Table& t = corpus.tables[static_cast<size_t>(ex.table_index)];
    bool ok = false;
    sql::Query predicted = parser.Parse(t, ex.generated.question, &ok);
    if (!ok) continue;
    std::printf("Q:    %s\n", ex.generated.question.c_str());
    std::printf("gold: %s\n", ex.generated.query.ToSql().c_str());
    std::printf("pred: %s\n", predicted.ToSql().c_str());
    auto result = sql::Execute(predicted, t);
    std::printf("exec: %s\n\n",
                result.ok() ? result->FirstText().c_str()
                            : result.status().ToString().c_str());
  }
  std::printf("text_to_sql: OK\n");
  return 0;
}
