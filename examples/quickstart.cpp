// Quickstart (§3.1 of the tutorial, "Off-the-shelf Model Inputs and
// Outputs"): load a table from CSV, linearize it, encode it with a
// table model, and inspect the vector representation — the Fig. 2a
// notebook as a C++ program.
//
//   load_table -> tokenize/serialize -> model.encode -> inspect

#include <cstdio>

#include "models/table_encoder.h"
#include "pretrain/trainer.h"
#include "serialize/serializer.h"
#include "serialize/vocab_builder.h"
#include "table/csv.h"
#include "table/synth.h"
#include "tensor/ops.h"

using namespace tabrep;

int main() {
  // --- 1. Load a sample table (here: written to CSV first, then read
  // back, to show the CSV path end to end). -----------------------------
  Table demo = MakeCountryDemoTable();
  const std::string csv_path = "/tmp/tabrep_quickstart.csv";
  if (Status s = WriteCsvFile(demo, csv_path); !s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto table_or = ReadCsvFile(csv_path);
  if (!table_or.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 table_or.status().ToString().c_str());
    return 1;
  }
  Table table = std::move(*table_or);
  table.set_title("Population in Million by Country");
  std::printf("Loaded table:\n%s\n", table.ToString().c_str());

  // --- 2. Build a tokenizer and serialize the table. -------------------
  // (A real deployment would ship a trained vocab; here we train one on
  // a synthetic corpus in-process — the paper's "pretrained model" is
  // pretrained inside the binary.)
  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_tables = 60;
  TableCorpus corpus = GenerateSyntheticCorpus(corpus_opts);
  WordPieceTrainerOptions vocab_opts;
  vocab_opts.vocab_size = 2000;
  WordPieceTokenizer tokenizer = BuildCorpusTokenizer(corpus, vocab_opts);

  TableSerializer serializer(&tokenizer);
  std::printf("Linearized input:\n  %s\n\n",
              serializer.LinearizeToString(table).c_str());
  TokenizedTable serialized = serializer.Serialize(table);
  std::printf("Serialized to %lld tokens covering %zu cells\n\n",
              static_cast<long long>(serialized.size()),
              serialized.cells.size());

  // --- 3. Encode with a table model. ------------------------------------
  ModelConfig config;
  config.family = ModelFamily::kTapas;
  config.vocab_size = tokenizer.vocab().size();
  config.transformer.dim = 64;
  config.transformer.num_layers = 2;
  config.transformer.num_heads = 4;
  config.transformer.ffn_dim = 128;
  TableEncoderModel model(config);
  model.SetTraining(false);

  Rng rng(1);
  models::Encoded encoded = model.Encode(serialized, rng);
  Tensor table_embedding = model.Pooled(encoded).value();
  std::printf("Table embedding (%s): %s\n",
              ShapeToString(table_embedding.shape()).c_str(),
              table_embedding.ToString().c_str());

  // --- 4. Use the representation: nearest corpus table by cosine. ------
  float best_sim = -2.0f;
  std::string best_id;
  for (const Table& t : corpus.tables) {
    models::Encoded e = model.Encode(serializer.Serialize(t), rng);
    const float sim = ops::CosineSimilarity(table_embedding,
                                            model.Pooled(e).value());
    if (sim > best_sim) {
      best_sim = sim;
      best_id = t.id() + " (" + t.title() + ")";
    }
  }
  std::printf("Most similar corpus table: %s, cosine %.3f\n",
              best_id.c_str(), best_sim);

  // --- 5. A taste of pretraining, with telemetry. -----------------------
  // The trainer emits its curve through an obs::MetricsSink; with only
  // log_every set it uses an internal StdoutSink — the exact rendering
  // bench_fig2c_pretraining prints, just fewer steps.
  Rng split_rng(7);
  auto [train_split, heldout] = corpus.Split(0.25, split_rng);
  std::printf("\nPretraining (MLM) on %lld tables, %lld held out:\n",
              static_cast<long long>(train_split.size()),
              static_cast<long long>(heldout.size()));
  TableEncoderModel pretrain_model(config);
  PretrainConfig pconfig;
  pconfig.steps = 40;
  pconfig.batch_size = 2;
  pconfig.log_every = 10;
  pconfig.eval_every = 20;
  PretrainTrainer trainer(&pretrain_model, &serializer, pconfig);
  trainer.Train(train_split, &heldout);

  std::printf("\nquickstart: OK\n");
  return 0;
}
