// Data imputation (the §3.4 hands-on exercise, Fig. 2d): fine-tune a
// TURL-style model to populate missing cells, evaluate F1 on held-out
// tables, and fill in the NULL cells of the paper's demo tables —
// including the failure cases (numeric and headerless tables).

#include <cstdio>

#include "models/explain.h"
#include "pretrain/trainer.h"
#include "serialize/vocab_builder.h"
#include "table/synth.h"
#include "tasks/imputation.h"

using namespace tabrep;

int main() {
  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_tables = 80;
  corpus_opts.numeric_table_fraction = 0.15;
  TableCorpus corpus = GenerateSyntheticCorpus(corpus_opts);
  Rng split_rng(1);
  auto [train, test] = corpus.Split(0.25, split_rng);

  WordPieceTrainerOptions vocab_opts;
  vocab_opts.vocab_size = 2000;
  WordPieceTokenizer tokenizer = BuildCorpusTokenizer(corpus, vocab_opts);
  SerializerOptions sopts;
  sopts.max_tokens = 128;
  TableSerializer serializer(&tokenizer, sopts);

  ModelConfig config;
  config.family = ModelFamily::kTurl;
  config.vocab_size = tokenizer.vocab().size();
  config.entity_vocab_size = corpus.entities.size();
  config.transformer.dim = 48;
  config.transformer.num_layers = 2;
  config.transformer.num_heads = 4;
  config.transformer.ffn_dim = 96;
  TableEncoderModel model(config);

  std::printf("Pretraining with MLM + Masked Entity Recovery ...\n");
  PretrainConfig pconfig;
  pconfig.steps = 200;
  pconfig.batch_size = 2;
  pconfig.use_mer = true;
  PretrainTrainer pretrainer(&model, &serializer, pconfig);
  auto curve = pretrainer.Train(train);
  std::printf("  mlm %.3f -> %.3f | mer %.3f -> %.3f\n",
              curve.front().mlm_loss, curve.back().mlm_loss,
              curve.front().mer_loss, curve.back().mer_loss);

  std::printf("Fine-tuning for data imputation ...\n");
  FineTuneConfig fconfig;
  fconfig.steps = 500;
  fconfig.batch_size = 4;
  fconfig.lr = 1e-3f;
  ImputationTask task(&model, &serializer, fconfig, train);
  const FineTuneReport train_report = task.Train(train);
  ClassificationReport report = task.Evaluate(test, 120);
  std::printf("  train acc (tail) %.3f | held-out: acc %.3f macro-F1 %.3f "
              "micro-F1 %.3f over %lld cells\n\n",
              train_report.accuracy, report.accuracy, report.macro.f1,
              report.micro.f1, static_cast<long long>(report.total));

  // Fill the paper's demo tables.
  Table awards = MakeAwardsDemoTable();
  std::printf("Awards table with NULLs:\n%s\n", awards.ToString(5).c_str());
  std::printf("Imputations:\n");
  std::printf("  (0, Language)  -> %s\n",
              task.PredictCell(awards, 0, 3).c_str());
  std::printf("  (1, Recipient) -> %s\n",
              task.PredictCell(awards, 1, 1).c_str());
  std::printf("  (2, Year)      -> %s\n\n",
              task.PredictCell(awards, 2, 0).c_str());

  // Failure cases highlighted by the tutorial.
  Table census = MakeCensusDemoTable();
  std::printf("Numeric CSV table (harder; numeric cells are outside the "
              "categorical label space):\n%s\n",
              census.ToString(5).c_str());
  std::printf("  (1, workclass) -> %s\n",
              task.PredictCell(census, 1, 1).c_str());
  std::printf("  (2, income)    -> %s\n\n",
              task.PredictCell(census, 2, 4).c_str());

  Table headerless = awards.WithoutHeader();
  std::printf("Headerless variant (context removed):\n");
  std::printf("  (1, col 1) -> %s\n",
              task.PredictCell(headerless, 1, 1).c_str());

  // Why did the model predict what it did? Attention-rollout
  // explanation (the justification §2.4 asks systems to expose).
  std::printf("\nExplanation for the (1, Recipient) prediction — top "
              "contributing inputs by attention rollout:\n");
  Rng explain_rng(55);
  TokenizedTable serialized = serializer.Serialize(awards);
  for (const models::Attribution& a :
       models::ExplainCell(model, serialized, awards, 1, 1, 5, explain_rng)) {
    std::printf("  %5.1f%%  %s\n", 100.0 * a.relevance,
                a.description.c_str());
  }

  std::printf("\ndata_imputation: OK\n");
  return 0;
}
