// Table question answering (the Fig. 1 scenario): ask natural-language
// questions like "what is the population of france" against a table
// and get the answering cell back. A TAPAS-style model is pretrained
// on a synthetic corpus, fine-tuned for cell selection, then queried.

#include <cstdio>

#include "pretrain/trainer.h"
#include "serialize/vocab_builder.h"
#include "table/synth.h"
#include "tasks/qa.h"

using namespace tabrep;

int main() {
  // Corpus + tokenizer + serializer.
  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_tables = 40;
  corpus_opts.numeric_table_fraction = 0.1;
  TableCorpus corpus = GenerateSyntheticCorpus(corpus_opts);
  WordPieceTrainerOptions vocab_opts;
  vocab_opts.vocab_size = 2000;
  WordPieceTokenizer tokenizer = BuildCorpusTokenizer(corpus, vocab_opts);
  SerializerOptions sopts;
  sopts.max_tokens = 128;
  TableSerializer serializer(&tokenizer, sopts);

  // TAPAS-style model with structural embeddings.
  ModelConfig config;
  config.family = ModelFamily::kTapas;
  config.vocab_size = tokenizer.vocab().size();
  config.transformer.dim = 48;
  config.transformer.num_layers = 2;
  config.transformer.num_heads = 4;
  config.transformer.ffn_dim = 96;
  config.transformer.dropout = 0.05f;
  TableEncoderModel model(config);

  // Brief pretraining, then QA fine-tuning.
  std::printf("Pretraining (MLM) ...\n");
  PretrainConfig pconfig;
  pconfig.steps = 200;
  pconfig.batch_size = 2;
  PretrainTrainer pretrainer(&model, &serializer, pconfig);
  auto curve = pretrainer.Train(corpus);
  std::printf("  mlm loss %.3f -> %.3f\n", curve.front().mlm_loss,
              curve.back().mlm_loss);

  std::printf("Fine-tuning for cell selection ...\n");
  Rng rng(3);
  std::vector<QaExample> examples = GenerateQaExamples(corpus, 4, rng);
  FineTuneConfig fconfig;
  fconfig.steps = 1500;
  fconfig.batch_size = 4;
  fconfig.lr = 1e-3f;
  QaTask qa(&model, &serializer, fconfig);
  qa.Train(corpus, examples);
  std::printf("  denotation accuracy on %zu questions: %.3f\n\n",
              examples.size(), qa.Evaluate(corpus, examples));

  // The Fig. 1 scenario: questions over corpus tables, with gold
  // answers for comparison (the model is laptop-scale; expect roughly
  // the accuracy printed above, with column identification typically
  // learned before row identification).
  std::printf("Sample predictions (gold in brackets):\n");
  Rng demo_rng(17);
  auto demo = GenerateQaExamples(corpus, 1, demo_rng);
  for (size_t i = 0; i < demo.size() && i < 6; ++i) {
    const Table& t = corpus.tables[static_cast<size_t>(demo[i].table_index)];
    std::printf("Q: %s\n", demo[i].question.c_str());
    std::printf("A: %s  [gold: %s]\n\n",
                qa.Answer(t, demo[i].question).c_str(),
                t.cell(demo[i].answer_row, demo[i].answer_col)
                    .ToText()
                    .c_str());
  }

  // And the out-of-distribution Fig. 1 table itself.
  Table table = MakeCountryDemoTable();
  std::printf("Fig. 1 table:\n%s\n", table.ToString(10).c_str());
  const char* question = "what is the population of france";
  std::printf("Q: %s\nA: %s  [gold: 67.4]\n", question,
              qa.Answer(table, question).c_str());
  std::printf("\ntable_qa: OK\n");
  return 0;
}
